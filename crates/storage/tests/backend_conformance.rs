//! Backend-conformance suite: one behavioral contract, executed against
//! both [`SimBackend`] (the deterministic CI default) and [`FileBackend`]
//! (real files in a tempdir). Every case runs on both backends — if a
//! behavior diverges, the assertion message names the backend that broke
//! the contract.
//!
//! Covered contract surface:
//! * append/read round-trip (cached and cache-bypassing),
//! * checksum-mismatch surfacing on a corrupted frame,
//! * reads from sealed extents after rollover,
//! * recovery replay: reopen from the persisted bytes alone,
//! * (proptest, file only) any single-bit flip on the real extent file is
//!   detected at read time.

use bg3_storage::{
    BackendKind, ErrorKind, ExtentBackend, ExtentId, FaultBackend, FaultPlan, FileBackend,
    PageAddr, ReadOpts, SimBackend, StoreBuilder, StreamId, FRAME_HEADER_LEN,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Minimal self-cleaning tempdir (no external crates available).
struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let unique = format!(
            "bg3-conformance-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )
        .replace(['(', ')'], "");
        let path = std::env::temp_dir().join(unique);
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One backend under test. Holds whatever keeps the persisted bytes alive
/// across a store drop (the shared `Arc` for sim, the tempdir for file),
/// so `open()` models recovery: a brand-new store over surviving bytes.
enum Fixture {
    Sim(Arc<dyn ExtentBackend>),
    File(TempDir),
    /// [`FaultBackend`] with an empty fault plan wrapping a real
    /// [`FileBackend`]: the decorator must be behaviorally invisible when
    /// no fault fires, so every conformance case runs through it too.
    FaultFile(TempDir),
}

impl Fixture {
    fn all(tag: &str) -> Vec<Fixture> {
        vec![
            Fixture::Sim(Arc::new(SimBackend::new())),
            Fixture::File(TempDir::new(tag)),
            Fixture::FaultFile(TempDir::new(&format!("fault-{tag}"))),
        ]
    }

    fn name(&self) -> &'static str {
        match self {
            Fixture::Sim(_) => "sim",
            Fixture::File(_) => "file",
            Fixture::FaultFile(_) => "fault(file)",
        }
    }

    fn builder(&self) -> StoreBuilder {
        let b = StoreBuilder::counting();
        match self {
            Fixture::Sim(backend) => b.backend(Arc::clone(backend)),
            Fixture::File(dir) => b.backend_kind(BackendKind::File {
                root: dir.0.clone(),
            }),
            Fixture::FaultFile(dir) => {
                // A fresh decorator per open models recovery the same way
                // the plain file fixture does: only the root survives.
                let inner = Arc::new(FileBackend::open(dir.0.clone()).unwrap());
                b.backend(Arc::new(FaultBackend::new(inner, FaultPlan::none())))
            }
        }
    }

    fn open(&self) -> bg3_storage::AppendOnlyStore {
        self.builder().build()
    }
}

#[test]
fn round_trip_appends_and_reads() {
    for fx in Fixture::all("roundtrip") {
        let store = fx.open();
        let mut written: Vec<(PageAddr, Vec<u8>)> = Vec::new();
        for i in 0..20u64 {
            let payload = vec![i as u8; 16 + i as usize];
            let addr = store
                .append(StreamId::BASE, &payload, i + 1, None)
                .unwrap_or_else(|e| panic!("[{}] append failed: {e}", fx.name()));
            written.push((addr, payload));
        }
        for (addr, payload) in &written {
            let cached = store.read(*addr).unwrap();
            assert_eq!(&cached[..], &payload[..], "[{}] cached read", fx.name());
            let raw = store
                .read_with(*addr, ReadOpts { bypass_cache: true })
                .unwrap();
            assert_eq!(&raw[..], &payload[..], "[{}] uncached read", fx.name());
        }
    }
}

#[test]
fn checksum_mismatch_surfaces_on_read() {
    for fx in Fixture::all("checksum") {
        let store = fx.open();
        let addr = store.append(StreamId::BASE, b"sensitive", 1, None).unwrap();
        // Flip one payload bit through the store's chaos hook — it lands in
        // the backend's persisted bytes, not any in-memory copy.
        store.corrupt_record_bit(addr, 3).unwrap();
        let err = store
            .read_with(addr, ReadOpts { bypass_cache: true })
            .unwrap_err();
        assert!(
            matches!(err.kind, ErrorKind::ChecksumMismatch),
            "[{}] expected ChecksumMismatch, got {err:?}",
            fx.name()
        );
    }
}

#[test]
fn sealed_extents_remain_readable() {
    for fx in Fixture::all("seal") {
        let store = fx.builder().extent_capacity(128).build();
        let mut written = Vec::new();
        // Enough appends to roll through several extents.
        for i in 0..30u64 {
            let payload = vec![0xA0 | (i as u8 & 0xF); 48];
            let addr = store
                .append(StreamId::DELTA, &payload, i + 1, None)
                .unwrap();
            written.push((addr, payload));
        }
        let sealed: Vec<_> = written
            .iter()
            .filter(|(addr, _)| addr.extent != written.last().unwrap().0.extent)
            .collect();
        assert!(
            !sealed.is_empty(),
            "[{}] test must cover sealed extents",
            fx.name()
        );
        for (addr, payload) in sealed {
            let bytes = store
                .read_with(*addr, ReadOpts { bypass_cache: true })
                .unwrap_or_else(|e| panic!("[{}] sealed read failed: {e}", fx.name()));
            assert_eq!(&bytes[..], &payload[..], "[{}] sealed extent", fx.name());
        }
    }
}

#[test]
fn recovery_replays_persisted_records() {
    for fx in Fixture::all("recovery") {
        let mut expected: Vec<(u64, Vec<u8>)> = Vec::new();
        {
            let store = fx.open();
            for i in 0..12u64 {
                let payload = format!("record-{i}").into_bytes();
                store.append(StreamId::WAL, &payload, i + 1, None).unwrap();
                expected.push((i + 1, payload));
            }
            store.sync_stream(StreamId::WAL).unwrap();
        } // node dies: only the backend's bytes survive

        let store = fx.open();
        let mut recovered: Vec<(u64, Vec<u8>)> = store
            .scan_stream(StreamId::WAL)
            .unwrap_or_else(|e| panic!("[{}] scan after reopen: {e}", fx.name()))
            .into_iter()
            .map(|(_, tag, bytes)| (tag, bytes.to_vec()))
            .collect();
        recovered.sort_by_key(|(tag, _)| *tag);
        assert_eq!(recovered, expected, "[{}] recovery replay", fx.name());

        // The recovered store keeps accepting appends with fresh ids.
        let addr = store.append(StreamId::WAL, b"post", 99, None).unwrap();
        assert_eq!(
            &store.read(addr).unwrap()[..],
            b"post",
            "[{}] append after recovery",
            fx.name()
        );
    }
}

/// Locates the single extent file a fresh one-record store produced.
fn only_extent_file(root: &std::path::Path) -> PathBuf {
    fn walk(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().is_some_and(|e| e == "dat") {
                out.push(path);
            }
        }
    }
    let mut found = Vec::new();
    walk(root, &mut found);
    assert_eq!(found.len(), 1, "expected exactly one extent file");
    found.into_iter().next().unwrap()
}

/// Runs a fixed backend op script through a freshly seeded
/// [`FaultBackend`] over a fresh [`SimBackend`] and returns a transcript
/// of every outcome. Two runs with the same `(seed, probability)` must
/// produce bit-identical transcripts — the errno storm is a pure function
/// of the seed and the op sequence.
fn fault_transcript(seed: u64, probability: f64) -> Vec<String> {
    fn show<T: std::fmt::Debug>(r: &Result<T, bg3_storage::StorageError>) -> String {
        match r {
            Ok(v) => format!("ok:{v:?}"),
            Err(e) => format!("err:{e}"),
        }
    }
    let plan = FaultPlan::seeded(seed)
        .fail_syncs(probability)
        .no_space_writes(probability)
        .eio_reads(probability)
        .torn_backend_writes(probability / 2.0);
    let backend = FaultBackend::new(Arc::new(SimBackend::new()), plan);
    let stream = StreamId::BASE;
    backend.allocate(stream, ExtentId(1), 4096).unwrap();
    let mut log = Vec::new();
    for i in 0..24u64 {
        log.push(show(&backend.write_at(
            stream,
            ExtentId(1),
            i * 4,
            &[i as u8; 4],
        )));
        log.push(show(&backend.read_at(stream, ExtentId(1), i * 4, 4)));
        if i % 4 == 3 {
            log.push(show(&backend.sync(stream, ExtentId(1))));
        }
    }
    log.push(show(&backend.seal(stream, ExtentId(1))));
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seeded errno schedules are deterministic: the same seed and fault
    /// probability produce the exact same sequence of injected failures
    /// (and surviving data) across two independent runs.
    #[test]
    fn seeded_errno_schedules_replay_identically(
        seed in any::<u64>(),
        p_mille in 0u32..=1000,
    ) {
        let probability = f64::from(p_mille) / 1000.0;
        let first = fault_transcript(seed, probability);
        let second = fault_transcript(seed, probability);
        prop_assert_eq!(first, second, "seed {} diverged", seed);
    }

    /// Flip any single bit of the frame (header or payload) directly in
    /// the on-disk extent file — no store API involved — and the next
    /// cache-bypassing read must fail verification. This is the scrubber's
    /// silent-corruption model exercised end-to-end on a real filesystem.
    #[test]
    fn file_backend_detects_any_on_disk_bit_flip(
        params in (
            proptest::collection::vec(any::<u8>(), 1..96),
            any::<u32>(),
        ),
    ) {
        let (payload, flip) = params;
        let dir = TempDir::new("bitflip");
        let store = StoreBuilder::counting()
            .backend_kind(BackendKind::File { root: dir.0.clone() })
            .build();
        let addr = store.append(StreamId::BASE, &payload, 7, None).unwrap();
        store.sync_stream(StreamId::BASE).unwrap();

        let file = only_extent_file(&dir.0);
        let mut bytes = std::fs::read(&file).unwrap();
        let span = FRAME_HEADER_LEN + payload.len();
        prop_assert_eq!(bytes.len(), span, "one frame on disk");
        let bit = flip as usize % (span * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&file, &bytes).unwrap();

        let err = store.read_with(addr, ReadOpts { bypass_cache: true });
        prop_assert!(
            err.is_err(),
            "on-disk bit {bit} flipped but the read succeeded"
        );
    }
}
