//! Overload-oriented skewed workloads: super-node celebrity skew and
//! TTL-driven edge churn.
//!
//! Table 1's generators draw every vertex from one Zipf distribution; the
//! two generators here model the shapes that break engines *past* ordinary
//! power-law skew and that the `overload` experiment sweeps:
//!
//! - [`SuperNodeSkew`] concentrates a configurable fraction of all traffic
//!   on a tiny celebrity set, growing a handful of super-node adjacency
//!   lists whose one-hop scans dominate read cost (the "viral video"
//!   hotspot of §2.1).
//! - [`TtlChurn`] inserts transfer edges with a fixed application-level
//!   lifetime and deletes each one when it expires, holding the live edge
//!   set at a steady state while write traffic (insert + delete) never
//!   stops — the risk-control churn that keeps GC debt permanently nonzero.
//!
//! Both are spec-driven ([`SuperNodeSpec`], [`TtlChurnSpec`]) so the bench
//! harness can print the knobs alongside Table 1's rows, and both are
//! deterministic per seed like every other generator in this crate.

use crate::ops::Op;
use crate::workload::WorkloadGen;
use crate::zipf::Zipf;
use bg3_graph::{EdgeType, PropertyValue, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Knobs for [`SuperNodeSkew`].
#[derive(Debug, Clone, PartialEq)]
pub struct SuperNodeSpec {
    /// Total user population.
    pub users: u64,
    /// Size of the celebrity set (vertex ids `0..celebrities`).
    pub celebrities: u64,
    /// Fraction of all operations that target a celebrity vertex.
    pub celebrity_fraction: f64,
    /// Fraction of operations that are writes (edge inserts).
    pub write_fraction: f64,
    /// Zipf exponent for the non-celebrity tail.
    pub tail_exponent: f64,
    /// Fan-out cap for one-hop reads.
    pub read_limit: usize,
}

impl Default for SuperNodeSpec {
    fn default() -> Self {
        SuperNodeSpec {
            users: 100_000,
            celebrities: 8,
            celebrity_fraction: 0.5,
            write_fraction: 0.05,
            tail_exponent: 1.0,
            read_limit: 100,
        }
    }
}

/// Celebrity-skew generator: `celebrity_fraction` of traffic lands on a
/// set of `celebrities` super-nodes; the rest follows the usual Zipf tail.
/// Writes insert follower edges *onto* the chosen vertex, so celebrity
/// adjacency lists grow roughly `celebrity_fraction / celebrities` times
/// the total write volume each — orders of magnitude past the tail.
pub struct SuperNodeSkew {
    spec: SuperNodeSpec,
    rng: StdRng,
    tail: Zipf,
    clock: u64,
}

impl SuperNodeSkew {
    /// Creates a generator from `spec`, deterministic per `seed`.
    pub fn new(spec: SuperNodeSpec, seed: u64) -> Self {
        assert!(spec.celebrities >= 1, "need at least one celebrity");
        assert!(
            spec.celebrities < spec.users,
            "celebrity set must be a strict subset"
        );
        assert!((0.0..=1.0).contains(&spec.celebrity_fraction));
        assert!((0.0..=1.0).contains(&spec.write_fraction));
        let tail = Zipf::new(spec.users - spec.celebrities, spec.tail_exponent);
        SuperNodeSkew {
            spec,
            rng: StdRng::seed_from_u64(seed),
            tail,
            clock: 0,
        }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &SuperNodeSpec {
        &self.spec
    }

    /// True when `v` is in the celebrity set.
    pub fn is_celebrity(&self, v: VertexId) -> bool {
        v.0 < self.spec.celebrities
    }

    fn pick_target(&mut self) -> VertexId {
        if self.rng.gen_bool(self.spec.celebrity_fraction) {
            // Celebrities are uniformly hot: the point of the workload is
            // a *set* of super-nodes, not one.
            VertexId(self.rng.gen_range(0..self.spec.celebrities))
        } else {
            // Tail ids start above the celebrity range.
            VertexId(self.spec.celebrities + self.tail.sample(&mut self.rng) - 1)
        }
    }
}

impl WorkloadGen for SuperNodeSkew {
    fn next_op(&mut self) -> Op {
        self.clock += 1;
        let target = self.pick_target();
        if self.rng.gen_bool(self.spec.write_fraction) {
            // A new follower (drawn from the whole population) follows the
            // hot vertex: the edge lands in `target`'s adjacency group.
            let follower = VertexId(self.rng.gen_range(0..self.spec.users));
            Op::InsertEdge {
                src: target,
                etype: EdgeType::FOLLOW,
                dst: follower,
                props: PropertyValue::Int(self.clock as i64).encode(),
            }
        } else {
            Op::OneHop {
                src: target,
                etype: EdgeType::FOLLOW,
                limit: self.spec.read_limit,
            }
        }
    }

    fn etype(&self) -> EdgeType {
        EdgeType::FOLLOW
    }
}

/// Knobs for [`TtlChurn`].
#[derive(Debug, Clone, PartialEq)]
pub struct TtlChurnSpec {
    /// Account population (Zipf-distributed).
    pub accounts: u64,
    /// Zipf exponent.
    pub exponent: f64,
    /// Edge lifetime measured in emitted operations: an edge inserted at
    /// sequence `i` is deleted by the first op emitted at sequence
    /// `>= i + ttl_ops`.
    pub ttl_ops: u64,
    /// Fraction of non-expiry operations that insert a new edge (the rest
    /// are existence checks on live edges).
    pub insert_fraction: f64,
}

impl Default for TtlChurnSpec {
    fn default() -> Self {
        TtlChurnSpec {
            accounts: 50_000,
            exponent: 1.0,
            ttl_ops: 512,
            insert_fraction: 0.5,
        }
    }
}

/// TTL-churn generator: every inserted transfer edge carries a lifetime of
/// `ttl_ops` operations; expiry deletes take priority over new traffic, so
/// the live set is bounded at roughly `ttl_ops * insert_fraction` edges
/// and the delete rate converges to the insert rate — a workload that is
/// all churn and no growth.
pub struct TtlChurn {
    spec: TtlChurnSpec,
    rng: StdRng,
    accounts: Zipf,
    clock: u64,
    /// Live edges in insertion order: (inserted_at, src, dst).
    live: VecDeque<(u64, VertexId, VertexId)>,
}

impl TtlChurn {
    /// Creates a generator from `spec`, deterministic per `seed`.
    pub fn new(spec: TtlChurnSpec, seed: u64) -> Self {
        assert!(spec.ttl_ops >= 1, "zero-lifetime edges never exist");
        assert!((0.0..=1.0).contains(&spec.insert_fraction));
        let accounts = Zipf::new(spec.accounts, spec.exponent);
        TtlChurn {
            spec,
            rng: StdRng::seed_from_u64(seed),
            accounts,
            clock: 0,
            live: VecDeque::new(),
        }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &TtlChurnSpec {
        &self.spec
    }

    /// Number of currently live (inserted, not yet expired) edges.
    pub fn live_edges(&self) -> usize {
        self.live.len()
    }
}

impl WorkloadGen for TtlChurn {
    fn next_op(&mut self) -> Op {
        self.clock += 1;
        // Expiry first: an edge past its lifetime is deleted before any
        // new traffic is generated, so staleness is bounded by one op.
        if let Some(&(inserted_at, src, dst)) = self.live.front() {
            if self.clock >= inserted_at + self.spec.ttl_ops {
                self.live.pop_front();
                return Op::DeleteEdge {
                    src,
                    etype: EdgeType::TRANSFER,
                    dst,
                };
            }
        }
        if self.rng.gen_bool(self.spec.insert_fraction) || self.live.is_empty() {
            let src = VertexId(self.accounts.sample(&mut self.rng));
            let dst = VertexId(self.accounts.sample(&mut self.rng));
            self.live.push_back((self.clock, src, dst));
            Op::InsertEdge {
                src,
                etype: EdgeType::TRANSFER,
                dst,
                props: PropertyValue::Int(self.clock as i64).encode(),
            }
        } else {
            // Check a uniformly random live edge — recently-written data
            // is exactly what risk-control reconciliation reads.
            let idx = self.rng.gen_range(0..self.live.len());
            let (_, src, dst) = self.live[idx];
            Op::CheckEdge {
                src,
                etype: EdgeType::TRANSFER,
                dst,
            }
        }
    }

    fn etype(&self) -> EdgeType {
        EdgeType::TRANSFER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn celebrity_set_receives_configured_traffic_share() {
        let spec = SuperNodeSpec {
            users: 10_000,
            celebrities: 4,
            celebrity_fraction: 0.6,
            ..SuperNodeSpec::default()
        };
        let mut w = SuperNodeSkew::new(spec, 42);
        let mut on_celebrity = 0usize;
        let total = 20_000usize;
        for _ in 0..total {
            let src = match w.next_op() {
                Op::InsertEdge { src, .. } | Op::OneHop { src, .. } => src,
                other => panic!("unexpected op {other:?}"),
            };
            if w.is_celebrity(src) {
                on_celebrity += 1;
            }
        }
        let frac = on_celebrity as f64 / total as f64;
        assert!(
            (frac - 0.6).abs() < 0.02,
            "celebrity traffic share {frac}, wanted ~0.6"
        );
    }

    #[test]
    fn degree_distribution_concentrates_on_super_nodes() {
        let spec = SuperNodeSpec {
            users: 10_000,
            celebrities: 4,
            celebrity_fraction: 0.5,
            write_fraction: 1.0, // writes only: measure adjacency growth
            ..SuperNodeSpec::default()
        };
        let mut w = SuperNodeSkew::new(spec, 7);
        let mut degree: HashMap<u64, usize> = HashMap::new();
        let total = 40_000usize;
        for _ in 0..total {
            match w.next_op() {
                Op::InsertEdge { src, .. } => *degree.entry(src.0).or_default() += 1,
                other => panic!("expected only inserts, got {other:?}"),
            }
        }
        // Each of the 4 celebrities holds ~1/8 of all edges; the hottest
        // tail vertex (Zipf rank 1 of ~10k at exponent 1.0) holds about
        // 1/(2·H(10k)) ≈ 5% of the tail half — several times less.
        let min_celebrity = (0..4).map(|v| degree.get(&v).copied().unwrap_or(0)).min();
        let max_tail = degree
            .iter()
            .filter(|(&v, _)| v >= 4)
            .map(|(_, &d)| d)
            .max()
            .unwrap_or(0);
        let min_celebrity = min_celebrity.unwrap_or(0);
        assert!(
            min_celebrity > 2 * max_tail,
            "coldest celebrity degree {min_celebrity} not clearly above hottest tail {max_tail}"
        );
        assert!(
            min_celebrity as f64 > 0.08 * total as f64,
            "each celebrity should hold ~12.5% of edges, got {min_celebrity}/{total}"
        );
    }

    #[test]
    fn ttl_churn_deletes_exactly_at_expiry() {
        let spec = TtlChurnSpec {
            ttl_ops: 64,
            ..TtlChurnSpec::default()
        };
        let mut w = TtlChurn::new(spec, 42);
        // Zipf skew repeats (src, dst) pairs, so track a FIFO of insert
        // sequences per key: a delete always retires the oldest instance.
        let mut inserted_at: HashMap<(u64, u64), Vec<u64>> = HashMap::new();
        let mut deletes = 0usize;
        for seq in 1..=20_000u64 {
            match w.next_op() {
                Op::InsertEdge { src, dst, .. } => {
                    inserted_at.entry((src.0, dst.0)).or_default().push(seq);
                }
                Op::DeleteEdge { src, dst, .. } => {
                    deletes += 1;
                    let seqs = inserted_at
                        .get_mut(&(src.0, dst.0))
                        .filter(|s| !s.is_empty())
                        .expect("delete of an edge this workload never inserted");
                    let at = seqs.remove(0);
                    let age = seq - at;
                    // Expiry-first scheduling bounds staleness: the delete
                    // lands on the first op at or after the deadline, and
                    // at most one expiry is emitted per op, so a backlog
                    // of b live-and-due edges drains within b ops. With
                    // insert_fraction 0.5 the backlog never builds up.
                    assert!(
                        age >= 64,
                        "edge deleted after {age} ops, before its 64-op TTL"
                    );
                    assert!(age <= 64 + 16, "delete lagged expiry by {} ops", age - 64);
                }
                Op::CheckEdge { src, dst, .. } => {
                    assert!(
                        inserted_at
                            .get(&(src.0, dst.0))
                            .is_some_and(|s| !s.is_empty()),
                        "checked an expired or never-inserted edge"
                    );
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert!(deletes > 5_000, "churn steady state reached: {deletes}");
    }

    #[test]
    fn ttl_churn_live_set_reaches_steady_state() {
        let spec = TtlChurnSpec {
            ttl_ops: 100,
            insert_fraction: 0.5,
            ..TtlChurnSpec::default()
        };
        let mut w = TtlChurn::new(spec, 9);
        for _ in 0..5_000 {
            w.next_op();
        }
        // Inserts happen on ~half the non-expiry ops and each lives 100
        // ops, so the live set hovers near 100 * 0.5 / (1 + 0.5) ≈ 33;
        // the hard bound is ttl_ops (one insert per op at most).
        let live = w.live_edges();
        assert!(live > 0, "steady state must keep edges live");
        assert!(live <= 100, "live set {live} exceeded the ttl_ops bound");
    }

    #[test]
    fn skewed_generators_are_deterministic_per_seed() {
        let mut a = SuperNodeSkew::new(SuperNodeSpec::default(), 5);
        let mut b = SuperNodeSkew::new(SuperNodeSpec::default(), 5);
        for _ in 0..200 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = TtlChurn::new(TtlChurnSpec::default(), 5);
        let mut d = TtlChurn::new(TtlChurnSpec::default(), 5);
        for _ in 0..200 {
            assert_eq!(c.next_op(), d.next_op());
        }
        let mut e = TtlChurn::new(TtlChurnSpec::default(), 6);
        let ops_d: Vec<Op> = (0..200).map(|_| d.next_op()).collect();
        let ops_e: Vec<Op> = (0..200).map(|_| e.next_op()).collect();
        assert_ne!(ops_d, ops_e, "different seeds diverge");
    }
}
