//! Zipf sampling by rejection-inversion.
//!
//! Implements Hörmann's rejection-inversion method for monotone discrete
//! distributions (the same algorithm behind Apache Commons RNG's
//! `RejectionInversionZipfSampler`): O(1) per sample with no per-rank
//! tables, which matters because the paper's workloads draw from vertex
//! populations of millions.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `exponent` (> 0).
    ///
    /// # Panics
    /// Panics when `n == 0` or `exponent <= 0`.
    pub fn new(n: u64, exponent: f64) -> Zipf {
        assert!(n >= 1, "population must be non-empty");
        assert!(exponent > 0.0, "exponent must be positive");
        let h_x1 = h_integral(1.5, exponent) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, exponent);
        let s = 2.0 - h_integral_inverse(h_integral(2.5, exponent) - h(2.0, exponent), exponent);
        Zipf {
            n,
            exponent,
            h_x1,
            h_n,
            s,
        }
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.exponent);
            let k = (x + 0.5) as u64;
            let k = k.clamp(1, self.n);
            if k as f64 - x <= self.s
                || u >= h_integral(k as f64 + 0.5, self.exponent) - h(k as f64, self.exponent)
            {
                return k;
            }
        }
    }

    /// Draws a rank and scrambles it into `0..n` with a fixed multiplicative
    /// permutation, so "hot" ids are spread across the key space instead of
    /// clustering at small values. Useful when key locality would otherwise
    /// bias page placement.
    pub fn sample_scrambled<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.sample(rng) - 1;
        // Odd multiplier => bijection modulo 2^64; fold into the population.
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.n
    }
}

/// `H(x) = ∫ t^-s dt`, the antiderivative used by rejection-inversion.
fn h_integral(x: f64, exponent: f64) -> f64 {
    if (exponent - 1.0).abs() < 1e-9 {
        x.ln()
    } else {
        (x.powf(1.0 - exponent) - 1.0) / (1.0 - exponent)
    }
}

/// `h(x) = x^-s`.
fn h(x: f64, exponent: f64) -> f64 {
    x.powf(-exponent)
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(t: f64, exponent: f64) -> f64 {
    if (exponent - 1.0).abs() < 1e-9 {
        t.exp()
    } else {
        // Guard the radicand: extreme t from floating error must not go
        // negative.
        let radicand = (1.0 + t * (1.0 - exponent)).max(f64::MIN_POSITIVE);
        radicand.powf(1.0 / (1.0 - exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: u64, exponent: f64, draws: usize) -> Vec<u64> {
        let zipf = Zipf::new(n, exponent);
        let mut rng = StdRng::seed_from_u64(12345);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn rank_one_frequency_matches_theory() {
        // For s=1, n=100: P(1) = 1/H_100 ≈ 1/5.187 ≈ 0.1928.
        let counts = histogram(100, 1.0, 200_000);
        let p1 = counts[1] as f64 / 200_000.0;
        assert!((p1 - 0.1928).abs() < 0.01, "P(1) = {p1}");
    }

    #[test]
    fn heavier_exponent_concentrates_mass() {
        let light = histogram(1000, 0.8, 100_000);
        let heavy = histogram(1000, 1.5, 100_000);
        assert!(heavy[1] > light[1], "larger s → hotter head");
    }

    #[test]
    fn counts_are_roughly_monotone_decreasing() {
        let counts = histogram(50, 1.1, 500_000);
        // Compare well-separated ranks to tolerate sampling noise.
        assert!(counts[1] > counts[5]);
        assert!(counts[5] > counts[20]);
        assert!(counts[20] > counts[45]);
    }

    #[test]
    fn population_of_one_always_returns_one() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn scrambled_samples_cover_the_space() {
        let zipf = Zipf::new(1_000_000, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut high = 0;
        for _ in 0..1000 {
            if zipf.sample_scrambled(&mut rng) > 500_000 {
                high += 1;
            }
        }
        // Unscrambled Zipf almost never exceeds 500k; scrambled should be
        // spread out.
        assert!(high > 200, "scrambling spreads hot ids: {high}/1000 high");
    }

    #[test]
    fn large_population_is_cheap_to_construct() {
        // No per-rank table: constructing for 100M ranks must be instant.
        let zipf = Zipf::new(100_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let k = zipf.sample(&mut rng);
        assert!((1..=100_000_000).contains(&k));
    }
}
