//! The operation vocabulary workloads emit and engines execute.

use bg3_graph::{EdgeType, VertexId};

/// One logical request, engine-agnostic. A benchmark driver maps these onto
/// a [`bg3_graph::GraphStore`] (or a replicated deployment).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Insert a single edge with encoded properties.
    InsertEdge {
        /// Source vertex.
        src: VertexId,
        /// Edge type.
        etype: EdgeType,
        /// Destination vertex.
        dst: VertexId,
        /// Encoded edge properties (e.g. an action timestamp).
        props: Vec<u8>,
    },
    /// Enumerate one-hop neighbors.
    OneHop {
        /// Query vertex.
        src: VertexId,
        /// Edge type to follow.
        etype: EdgeType,
        /// Fan-out cap.
        limit: usize,
    },
    /// Bounded k-hop expansion.
    KHop {
        /// Query vertex.
        src: VertexId,
        /// Edge type to follow.
        etype: EdgeType,
        /// Hop count (1..).
        hops: usize,
        /// Per-vertex fan-out cap.
        fanout: usize,
    },
    /// Verify a specific edge exists (the risk-control RO-side check).
    CheckEdge {
        /// Source vertex.
        src: VertexId,
        /// Edge type.
        etype: EdgeType,
        /// Destination vertex.
        dst: VertexId,
    },
    /// Run cycle detection through `anchor` (anti-money-laundering).
    PatternCycle {
        /// Anchor vertex the cycle must pass through.
        anchor: VertexId,
        /// Edge type of the cycle.
        etype: EdgeType,
        /// Cycle length in edges.
        length: usize,
    },
    /// Delete a specific edge — emitted by TTL-churn workloads when an
    /// edge's lifetime elapses (application-level expiry, distinct from
    /// the store's extent-level TTL reclamation).
    DeleteEdge {
        /// Source vertex.
        src: VertexId,
        /// Edge type.
        etype: EdgeType,
        /// Destination vertex.
        dst: VertexId,
    },
}

impl Op {
    /// True for operations that mutate the graph.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::InsertEdge { .. } | Op::DeleteEdge { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_classification() {
        assert!(Op::InsertEdge {
            src: VertexId(1),
            etype: EdgeType::LIKE,
            dst: VertexId(2),
            props: vec![]
        }
        .is_write());
        assert!(!Op::OneHop {
            src: VertexId(1),
            etype: EdgeType::LIKE,
            limit: 10
        }
        .is_write());
        assert!(!Op::PatternCycle {
            anchor: VertexId(1),
            etype: EdgeType::TRANSFER,
            length: 3
        }
        .is_write());
        assert!(Op::DeleteEdge {
            src: VertexId(1),
            etype: EdgeType::TRANSFER,
            dst: VertexId(2),
        }
        .is_write());
    }
}
