//! The three workload generators.

use crate::ops::Op;
use crate::zipf::Zipf;
use bg3_graph::{EdgeType, PropertyValue, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable stream of operations.
pub trait WorkloadGen {
    /// Produces the next operation.
    fn next_op(&mut self) -> Op;

    /// The edge type this workload exercises.
    fn etype(&self) -> EdgeType;
}

/// "Douyin Follow" (Table 1): 99% one-hop follower queries, 1% single-edge
/// follow insertions, over a power-law population of users.
pub struct DouyinFollow {
    rng: StdRng,
    users: Zipf,
    clock: u64,
}

impl DouyinFollow {
    /// Creates a generator over `users` users with Zipf exponent
    /// `exponent` (ByteDance-style skew ≈ 1.0).
    pub fn new(users: u64, exponent: f64, seed: u64) -> Self {
        DouyinFollow {
            rng: StdRng::seed_from_u64(seed),
            users: Zipf::new(users, exponent),
            clock: 0,
        }
    }
}

impl WorkloadGen for DouyinFollow {
    fn next_op(&mut self) -> Op {
        self.clock += 1;
        let src = VertexId(self.users.sample(&mut self.rng));
        if self.rng.gen_bool(0.01) {
            let dst = VertexId(self.users.sample(&mut self.rng));
            Op::InsertEdge {
                src,
                etype: EdgeType::FOLLOW,
                dst,
                props: PropertyValue::Int(self.clock as i64).encode(),
            }
        } else {
            Op::OneHop {
                src,
                etype: EdgeType::FOLLOW,
                limit: 100,
            }
        }
    }

    fn etype(&self) -> EdgeType {
        EdgeType::FOLLOW
    }
}

/// "Financial Risk Control" (Table 1): strict 50/50 read/write. Writes are
/// transfer-edge insertions (TTL'd upstream); reads alternate between
/// verifying recently inserted edges and pattern matching (5–10 hop cycle
/// checks) — the anti-money-laundering loop detection of §2.6.
pub struct FinancialRiskControl {
    rng: StdRng,
    accounts: Zipf,
    clock: u64,
    /// Recently inserted edges pending verification (bounded FIFO).
    pending: Vec<(VertexId, VertexId)>,
    write_turn: bool,
}

impl FinancialRiskControl {
    /// Creates a generator over `accounts` accounts.
    pub fn new(accounts: u64, exponent: f64, seed: u64) -> Self {
        FinancialRiskControl {
            rng: StdRng::seed_from_u64(seed),
            accounts: Zipf::new(accounts, exponent),
            clock: 0,
            pending: Vec::new(),
            write_turn: true,
        }
    }
}

impl WorkloadGen for FinancialRiskControl {
    fn next_op(&mut self) -> Op {
        self.clock += 1;
        // Alternate deterministically: the paper fixes the ratio at exactly
        // 1:1.
        self.write_turn = !self.write_turn;
        if !self.write_turn {
            let src = VertexId(self.accounts.sample(&mut self.rng));
            let dst = VertexId(self.accounts.sample(&mut self.rng));
            if self.pending.len() < 4096 {
                self.pending.push((src, dst));
            }
            Op::InsertEdge {
                src,
                etype: EdgeType::TRANSFER,
                dst,
                props: PropertyValue::Int(self.clock as i64).encode(),
            }
        } else if let Some((src, dst)) = (!self.pending.is_empty())
            .then(|| self.pending.remove(0))
            .filter(|_| self.rng.gen_bool(0.7))
        {
            // Reconciliation: check the edge the RW node just wrote.
            Op::CheckEdge {
                src,
                etype: EdgeType::TRANSFER,
                dst,
            }
        } else {
            // Deep analysis: 5..=10-hop cycle detection.
            Op::PatternCycle {
                anchor: VertexId(self.accounts.sample(&mut self.rng)),
                etype: EdgeType::TRANSFER,
                length: self.rng.gen_range(5..=10),
            }
        }
    }

    fn etype(&self) -> EdgeType {
        EdgeType::TRANSFER
    }
}

/// "Douyin Recommendation" (Table 1): read-only multi-hop sampling with the
/// paper's hop mix — 70% 1-hop, 20% 2-hop, 10% 3-hop.
pub struct DouyinRecommendation {
    rng: StdRng,
    users: Zipf,
}

impl DouyinRecommendation {
    /// Creates a generator over `users` users.
    pub fn new(users: u64, exponent: f64, seed: u64) -> Self {
        DouyinRecommendation {
            rng: StdRng::seed_from_u64(seed),
            users: Zipf::new(users, exponent),
        }
    }
}

impl WorkloadGen for DouyinRecommendation {
    fn next_op(&mut self) -> Op {
        let src = VertexId(self.users.sample(&mut self.rng));
        let roll: f64 = self.rng.gen();
        let hops = if roll < 0.7 {
            1
        } else if roll < 0.9 {
            2
        } else {
            3
        };
        if hops == 1 {
            Op::OneHop {
                src,
                etype: EdgeType::FOLLOW,
                limit: 100,
            }
        } else {
            Op::KHop {
                src,
                etype: EdgeType::FOLLOW,
                hops,
                fanout: 20,
            }
        }
    }

    fn etype(&self) -> EdgeType {
        EdgeType::FOLLOW
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_ops(gen: &mut dyn WorkloadGen, n: usize) -> (usize, usize) {
        let mut writes = 0;
        let mut reads = 0;
        for _ in 0..n {
            if gen.next_op().is_write() {
                writes += 1;
            } else {
                reads += 1;
            }
        }
        (reads, writes)
    }

    #[test]
    fn follow_is_99_to_1() {
        let mut w = DouyinFollow::new(10_000, 1.0, 42);
        let (reads, writes) = count_ops(&mut w, 50_000);
        let write_frac = writes as f64 / (reads + writes) as f64;
        assert!(
            (write_frac - 0.01).abs() < 0.005,
            "write fraction {write_frac}"
        );
    }

    #[test]
    fn follow_reads_are_one_hop() {
        let mut w = DouyinFollow::new(1000, 1.0, 1);
        for _ in 0..1000 {
            match w.next_op() {
                Op::OneHop { etype, .. } => assert_eq!(etype, EdgeType::FOLLOW),
                Op::InsertEdge { etype, .. } => assert_eq!(etype, EdgeType::FOLLOW),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn risk_control_is_exactly_50_50() {
        let mut w = FinancialRiskControl::new(10_000, 1.0, 42);
        let (reads, writes) = count_ops(&mut w, 10_000);
        assert_eq!(reads, 5000);
        assert_eq!(writes, 5000);
    }

    #[test]
    fn risk_control_reads_mix_checks_and_patterns() {
        let mut w = FinancialRiskControl::new(10_000, 1.0, 7);
        let mut checks = 0;
        let mut patterns = 0;
        for _ in 0..10_000 {
            match w.next_op() {
                Op::CheckEdge { .. } => checks += 1,
                Op::PatternCycle { length, .. } => {
                    assert!((5..=10).contains(&length));
                    patterns += 1;
                }
                Op::InsertEdge { .. } => {}
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert!(checks > 1000, "verification reads present: {checks}");
        assert!(patterns > 500, "pattern reads present: {patterns}");
    }

    #[test]
    fn recommendation_is_read_only_with_hop_mix() {
        let mut w = DouyinRecommendation::new(10_000, 1.0, 42);
        let mut hops = [0usize; 4];
        for _ in 0..30_000 {
            match w.next_op() {
                Op::OneHop { .. } => hops[1] += 1,
                Op::KHop { hops: h, .. } => hops[h] += 1,
                other => panic!("write in a read-only workload: {other:?}"),
            }
        }
        let total = 30_000f64;
        assert!((hops[1] as f64 / total - 0.7).abs() < 0.02);
        assert!((hops[2] as f64 / total - 0.2).abs() < 0.02);
        assert!((hops[3] as f64 / total - 0.1).abs() < 0.02);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = DouyinFollow::new(1000, 1.0, 9);
        let mut b = DouyinFollow::new(1000, 1.0, 9);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = DouyinFollow::new(1000, 1.0, 10);
        let first_100: Vec<Op> = (0..100).map(|_| c.next_op()).collect();
        let mut d = DouyinFollow::new(1000, 1.0, 9);
        let other: Vec<Op> = (0..100).map(|_| d.next_op()).collect();
        assert_ne!(first_100, other, "different seeds diverge");
    }
}
