//! # bg3-workloads
//!
//! Synthetic workload generators reproducing Table 1 of the BG3 paper.
//!
//! ByteDance's graph access patterns are power-law distributed — a few
//! celebrities/viral videos receive most of the traffic — so every
//! generator draws vertices from a [`Zipf`] distribution (the paper's
//! micro-benchmarks explicitly use "a power-law benchmark").
//!
//! Three workloads are modelled, one per Table 1 row:
//!
//! | workload | read/write | shape |
//! |---|---|---|
//! | [`DouyinFollow`] | 99% / 1% | single-edge inserts + one-hop queries |
//! | [`FinancialRiskControl`] | 50% / 50% | edge inserts (TTL'd) + existence checks + pattern matching, 5–10 hops |
//! | [`DouyinRecommendation`] | read-only | 70% 1-hop, 20% 2-hop, 10% 3-hop |
//!
//! The [`skewed`] module adds two overload-oriented generators beyond the
//! Table 1 mix: [`SuperNodeSkew`] (celebrity hotspots growing super-node
//! adjacency) and [`TtlChurn`] (insert/expire churn at steady state).

pub mod ops;
pub mod skewed;
pub mod spec;
pub mod workload;
pub mod zipf;

pub use ops::Op;
pub use skewed::{SuperNodeSkew, SuperNodeSpec, TtlChurn, TtlChurnSpec};
pub use spec::{table1, WorkloadSpec};
pub use workload::{DouyinFollow, DouyinRecommendation, FinancialRiskControl, WorkloadGen};
pub use zipf::Zipf;
