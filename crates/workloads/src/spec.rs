//! Printable workload descriptions — the content of the paper's Table 1.

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name.
    pub name: &'static str,
    /// Read fraction (0.0..=1.0).
    pub read_fraction: f64,
    /// Prose description matching the paper's wording.
    pub description: &'static str,
    /// Vertex count of the production graph the row describes.
    pub vertices: u64,
    /// Edge count of the production graph the row describes.
    pub edges: u64,
    /// Hop range accessed.
    pub hops: (usize, usize),
    /// Whether the workload relies on TTL-based expiry.
    pub uses_ttl: bool,
}

impl WorkloadSpec {
    /// Formats the row like the paper's table.
    pub fn row(&self) -> String {
        format!(
            "{} | {:.0}%/{:.0}% | |V|={} |E|={} | hops {}..{} | ttl={} | {}",
            self.name,
            self.read_fraction * 100.0,
            (1.0 - self.read_fraction) * 100.0,
            human(self.vertices),
            human(self.edges),
            self.hops.0,
            self.hops.1,
            self.uses_ttl,
            self.description,
        )
    }
}

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else {
        n.to_string()
    }
}

/// The three Table 1 rows.
pub fn table1() -> [WorkloadSpec; 3] {
    [
        WorkloadSpec {
            name: "Douyin Follow",
            read_fraction: 0.99,
            description: "single edge insertion, one-hop neighbor query",
            vertices: 3_000_000,
            edges: 500_000_000,
            hops: (1, 1),
            uses_ttl: false,
        },
        WorkloadSpec {
            name: "Financial Risk Control",
            read_fraction: 0.50,
            description: "pattern matching, single edge insertion, edge verification",
            vertices: 5_000_000_000,
            edges: 100_000_000_000,
            hops: (5, 10),
            uses_ttl: true,
        },
        WorkloadSpec {
            name: "Douyin Recommendation",
            read_fraction: 1.0,
            description: "multi-hop neighbor query: 70% 1-hop, 20% 2-hop, 10% 3-hop",
            vertices: 3_000_000,
            edges: 500_000_000,
            hops: (1, 3),
            uses_ttl: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        let [follow, risk, rec] = table1();
        assert_eq!(follow.read_fraction, 0.99);
        assert_eq!(follow.hops, (1, 1));
        assert!(!follow.uses_ttl);
        assert_eq!(risk.read_fraction, 0.50);
        assert!(risk.uses_ttl);
        assert_eq!(risk.vertices, 5_000_000_000);
        assert_eq!(rec.read_fraction, 1.0);
        assert_eq!(rec.hops, (1, 3));
    }

    #[test]
    fn rows_render() {
        for spec in table1() {
            let row = spec.row();
            assert!(row.contains(spec.name));
            assert!(row.contains("hops"));
        }
        assert!(table1()[1].row().contains("5.0B"));
        assert!(table1()[0].row().contains("3M"));
    }

    #[test]
    fn human_format_boundaries() {
        assert_eq!(human(999), "999");
        assert_eq!(human(3_000_000), "3M");
        assert_eq!(human(100_000_000_000), "100.0B");
    }
}
