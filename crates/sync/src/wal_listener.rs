//! Bridges Bw-tree mutation events into WAL records.

use bg3_bwtree::{TreeEvent, TreeEventListener};
use bg3_wal::{WalPayload, WalWriter};
use std::sync::Arc;

/// A [`TreeEventListener`] that logs every mutation to the WAL before the
/// tree's own (deferred) flush — establishing the write-ahead property.
///
/// Event → record mapping:
///
/// | event                | WAL records                                    |
/// |----------------------|------------------------------------------------|
/// | `Upsert`             | `Upsert` on the page                           |
/// | `Delete`             | `Delete` on the page                           |
/// | `Consolidate`        | `PageImage` on the page                        |
/// | `Split`              | `Split` on the left page + `NewPage` on right  |
/// | `ForestSplitOut`     | `ForestSplitOut` on page 0                     |
///
/// A split therefore produces multiple consecutive LSNs, like LSNs 30–32 in
/// the paper's Fig. 7 walk-through.
pub struct WalListener {
    wal: Arc<WalWriter>,
}

impl WalListener {
    /// Wraps a WAL writer.
    pub fn new(wal: Arc<WalWriter>) -> Arc<Self> {
        Arc::new(WalListener { wal })
    }

    /// The underlying writer.
    pub fn wal(&self) -> &Arc<WalWriter> {
        &self.wal
    }
}

impl TreeEventListener for WalListener {
    fn on_event(&self, tree: u64, event: &TreeEvent) {
        let result = match event {
            TreeEvent::Upsert { page, key, value } => self.wal.append(
                tree,
                *page,
                WalPayload::Upsert {
                    key: key.clone(),
                    value: value.clone(),
                },
            ),
            TreeEvent::Delete { page, key } => {
                self.wal
                    .append(tree, *page, WalPayload::Delete { key: key.clone() })
            }
            TreeEvent::Consolidate { page, image } => self.wal.append(
                tree,
                *page,
                WalPayload::PageImage {
                    image: image.clone(),
                },
            ),
            TreeEvent::Split {
                left,
                right,
                separator,
                right_image,
                ..
            } => self
                .wal
                .append(
                    tree,
                    *left,
                    WalPayload::Split {
                        right_page: *right,
                        separator: separator.clone(),
                    },
                )
                .and_then(|_| {
                    self.wal.append(
                        tree,
                        *right,
                        WalPayload::NewPage {
                            image: right_image.clone(),
                        },
                    )
                }),
            TreeEvent::ForestSplitOut { group } => self.wal.append(
                tree,
                0,
                WalPayload::ForestSplitOut {
                    group: group.clone(),
                },
            ),
        };
        // The WAL stream is in-process; failure here means the simulated
        // store rejected an append, which is a programming error.
        result.expect("WAL append failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::{StoreBuilder, StoreConfig};
    use bg3_wal::Lsn;

    #[test]
    fn events_become_ordered_wal_records() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let wal = Arc::new(WalWriter::new(store));
        let listener = WalListener::new(Arc::clone(&wal));
        listener.on_event(
            3,
            &TreeEvent::Upsert {
                page: 1,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        );
        listener.on_event(
            3,
            &TreeEvent::Split {
                left: 1,
                right: 2,
                separator: b"m".to_vec(),
                left_image: vec![0, 0, 0, 0],
                right_image: vec![0, 0, 0, 0],
            },
        );
        assert_eq!(wal.last_lsn(), Lsn(3), "upsert + split + new-page");
        let mut reader = wal.open_reader();
        let records = reader.fetch_new().unwrap();
        assert!(matches!(records[0].payload, WalPayload::Upsert { .. }));
        assert!(matches!(records[1].payload, WalPayload::Split { .. }));
        assert!(matches!(records[2].payload, WalPayload::NewPage { .. }));
        assert_eq!(records[1].page, 1, "split indexed on the left page");
        assert_eq!(records[2].page, 2, "new page indexed on the right page");
    }
}
