//! # bg3-sync
//!
//! BG3's I/O-efficient leader-follower synchronization (§3.4 of the paper),
//! plus the previous-generation baseline it replaces.
//!
//! ## The BG3 mechanism
//!
//! * The **RW node** ([`RwNode`]) applies every mutation to its in-memory
//!   Bw-tree and appends a WAL record to the shared store *before*
//!   acknowledging (write-ahead; Fig. 7 steps (1)–(2)). Dirty pages are
//!   *not* flushed inline: they accumulate and a group commit flushes them
//!   in batch (step (7)), after which the shared mapping table is published
//!   and a `CheckpointComplete` record is logged (step (8)).
//! * Each **RO node** ([`RoNode`]) tails the WAL (step (3)). Structural
//!   records (splits) are applied to its routing table eagerly; page
//!   content records are parked in a **page-indexed log area** and applied
//!   lazily, only when a read actually brings the page into memory (steps
//!   (4)/(6)). Cache misses resolve through the *published* mapping version,
//!   which still points at pre-flush data — consistency comes from replaying
//!   the parked records on top (the paper's correctness argument).
//! * On `CheckpointComplete(upto)`, parked records with `lsn <= upto` are
//!   applied to any cached pages and discarded: the shared store now
//!   reflects them.
//!
//! ## The baseline
//!
//! [`ForwardingReplicator`] reproduces ByteGraph's legacy scheme: write
//! commands are forwarded asynchronously to each RO node over a lossy
//! channel and replayed, which only achieves eventual consistency — under
//! packet loss, RO nodes silently miss writes (Fig. 12).

pub mod forwarding;
pub mod latency;
pub mod recovery;
pub mod ro;
pub mod rw;
pub mod wal_listener;

pub use forwarding::{ForwardingConfig, ForwardingReplicator};
pub use latency::LatencyRecorder;
pub use recovery::recover_tree;
pub use ro::{RoNode, RoNodeConfig, RoStatsSnapshot};
pub use rw::{RwNode, RwNodeConfig};
pub use wal_listener::WalListener;
