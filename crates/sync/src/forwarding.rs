//! The legacy command-forwarding replication baseline.
//!
//! The previous ByteGraph generation synchronized RW and RO nodes by
//! asynchronously forwarding write commands (Gremlin) to every RO node and
//! replaying them (§2.3). The forwarding path can drop or reorder packets
//! under load; without acknowledgements the system is only eventually
//! consistent, and the paper measures the damage as a *recall rate* —
//! the fraction of leader writes a follower can read (Fig. 12).
//!
//! We model the forwarding fabric as an independent lossy channel per
//! replica with a configurable packet-loss probability.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of the forwarding baseline.
#[derive(Debug, Clone)]
pub struct ForwardingConfig {
    /// Number of RO replicas commands are forwarded to.
    pub replicas: usize,
    /// Probability that a forwarded command is lost (0.0..=1.0), applied
    /// independently per replica.
    pub packet_loss: f64,
    /// RNG seed for reproducible experiments.
    pub seed: u64,
}

impl Default for ForwardingConfig {
    fn default() -> Self {
        ForwardingConfig {
            replicas: 1,
            packet_loss: 0.0,
            seed: 42,
        }
    }
}

type Replica = Arc<Mutex<BTreeMap<Vec<u8>, Vec<u8>>>>;

/// The leader plus its forwarding fabric.
pub struct ForwardingReplicator {
    leader: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
    replicas: Vec<Replica>,
    rng: Mutex<StdRng>,
    config: ForwardingConfig,
    forwarded: Mutex<u64>,
    dropped: Mutex<u64>,
}

impl ForwardingReplicator {
    /// Creates a leader with `config.replicas` empty followers.
    pub fn new(config: ForwardingConfig) -> Self {
        ForwardingReplicator {
            leader: Mutex::new(BTreeMap::new()),
            replicas: (0..config.replicas)
                .map(|_| Arc::new(Mutex::new(BTreeMap::new())))
                .collect(),
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
            config,
            forwarded: Mutex::new(0),
            dropped: Mutex::new(0),
        }
    }

    /// Applies a write on the leader and forwards it to every replica,
    /// losing each copy independently with `packet_loss` probability.
    pub fn put(&self, key: &[u8], value: &[u8]) {
        self.leader.lock().insert(key.to_vec(), value.to_vec());
        for replica in &self.replicas {
            let lost = self.rng.lock().gen_bool(self.config.packet_loss);
            if lost {
                *self.dropped.lock() += 1;
            } else {
                *self.forwarded.lock() += 1;
                replica.lock().insert(key.to_vec(), value.to_vec());
            }
        }
    }

    /// Reads from the leader.
    pub fn leader_get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.leader.lock().get(key).cloned()
    }

    /// Reads from replica `idx`.
    pub fn replica_get(&self, idx: usize, key: &[u8]) -> Option<Vec<u8>> {
        self.replicas[idx].lock().get(key).cloned()
    }

    /// Fraction of the leader's keys replica `idx` can read — the recall
    /// rate of Fig. 12.
    pub fn recall(&self, idx: usize) -> f64 {
        let leader = self.leader.lock();
        if leader.is_empty() {
            return 1.0;
        }
        let replica = self.replicas[idx].lock();
        let hit = leader
            .iter()
            .filter(|(k, v)| replica.get(*k) == Some(v))
            .count();
        hit as f64 / leader.len() as f64
    }

    /// `(forwarded, dropped)` command counts across all replicas.
    pub fn channel_stats(&self) -> (u64, u64) {
        (*self.forwarded.lock(), *self.dropped.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(r: &ForwardingReplicator, n: u32) {
        for i in 0..n {
            r.put(format!("key{i}").as_bytes(), format!("v{i}").as_bytes());
        }
    }

    #[test]
    fn lossless_channel_gives_full_recall() {
        let r = ForwardingReplicator::new(ForwardingConfig {
            replicas: 2,
            packet_loss: 0.0,
            seed: 1,
        });
        fill(&r, 500);
        assert_eq!(r.recall(0), 1.0);
        assert_eq!(r.recall(1), 1.0);
        assert_eq!(r.channel_stats().1, 0);
    }

    #[test]
    fn recall_degrades_with_packet_loss() {
        // The Fig. 12 shape: ~1% loss → ~99% recall, 10% → ~90%.
        let mut last = 1.0;
        for loss in [0.01, 0.05, 0.10] {
            let r = ForwardingReplicator::new(ForwardingConfig {
                replicas: 1,
                packet_loss: loss,
                seed: 7,
            });
            fill(&r, 4000);
            let recall = r.recall(0);
            let expected = 1.0 - loss;
            assert!(
                (recall - expected).abs() < 0.02,
                "loss {loss}: recall {recall} far from {expected}"
            );
            assert!(recall < last, "recall strictly degrades");
            last = recall;
        }
    }

    #[test]
    fn replicas_lose_independently() {
        let r = ForwardingReplicator::new(ForwardingConfig {
            replicas: 3,
            packet_loss: 0.5,
            seed: 3,
        });
        fill(&r, 1000);
        let recalls: Vec<f64> = (0..3).map(|i| r.recall(i)).collect();
        // All should hover around 0.5 but not be identical.
        for r in &recalls {
            assert!((r - 0.5).abs() < 0.08, "recall {r}");
        }
        assert!(recalls.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn leader_always_reads_its_own_writes() {
        let r = ForwardingReplicator::new(ForwardingConfig {
            replicas: 1,
            packet_loss: 1.0,
            seed: 9,
        });
        fill(&r, 10);
        assert_eq!(r.leader_get(b"key3"), Some(b"v3".to_vec()));
        assert_eq!(r.recall(0), 0.0, "everything dropped");
        assert_eq!(r.replica_get(0, b"key3"), None);
    }

    #[test]
    fn empty_leader_reports_perfect_recall() {
        let r = ForwardingReplicator::new(ForwardingConfig::default());
        assert_eq!(r.recall(0), 1.0);
    }
}
