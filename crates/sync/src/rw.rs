//! The read-write (leader) node.

use crate::wal_listener::WalListener;
use bg3_bwtree::tree::FlushMode;
use bg3_bwtree::{BwTree, BwTreeConfig, PageTag};
use bg3_storage::{
    AppendOnlyStore, CrashPoint, CrashSwitch, PageAddr, SharedMappingTable, StorageResult,
    INITIAL_EPOCH,
};
use bg3_wal::{Lsn, WalPayload, WalReader, WalWriter};
use parking_lot::Mutex;
use std::sync::Arc;

/// RW-node configuration.
#[derive(Debug, Clone)]
pub struct RwNodeConfig {
    /// Tree id carried in WAL records and relocation tags.
    pub tree_id: u32,
    /// Bw-tree knobs. The flush mode is forced to deferred: the WAL is the
    /// durability mechanism; dirty pages flush via group commit.
    pub tree_config: BwTreeConfig,
    /// Group commit: flush once this many pages are dirty (the paper's
    /// "accumulated dirty pages reach a specific threshold").
    pub group_commit_pages: usize,
}

impl Default for RwNodeConfig {
    fn default() -> Self {
        RwNodeConfig {
            tree_id: 1,
            tree_config: BwTreeConfig::default(),
            group_commit_pages: 16,
        }
    }
}

/// The leader: applies writes in memory, logs them to the WAL on the shared
/// store, and group-commits dirty pages in the background (Fig. 7, left).
pub struct RwNode {
    tree: Arc<BwTree>,
    wal: Arc<WalWriter>,
    mapping: SharedMappingTable,
    store: AppendOnlyStore,
    config: RwNodeConfig,
    /// Leadership epoch this node writes under. Every WAL record and
    /// mapping publish carries it; once a successor seals a higher epoch,
    /// this node's writes are rejected at the store.
    epoch: u64,
    /// Flushed-page mapping updates whose publish RPC was dropped: staged
    /// here and re-published by the next checkpoint so `CheckpointComplete`
    /// is only ever logged for state storage actually reflects.
    pending_publish: Mutex<Vec<(u64, Option<PageAddr>)>>,
    /// Crash points observed by this node: `MidGroupCommit` fires between
    /// the flush and the mapping publish inside [`RwNode::checkpoint`];
    /// `MidFlush` is forwarded to the tree's flush loop. Disarmed (and
    /// free) by default.
    crash: CrashSwitch,
}

impl RwNode {
    /// Creates a leader over `store` with a fresh WAL and mapping table,
    /// on [`INITIAL_EPOCH`]. The tree's retry policy also governs WAL
    /// appends. The WAL shares the mapping table's fence, so sealing a new
    /// epoch (failover) cuts this node off from both planes at once.
    pub fn new(store: AppendOnlyStore, config: RwNodeConfig) -> Self {
        let crash = CrashSwitch::new();
        let mapping = SharedMappingTable::for_store(&store);
        let wal = Arc::new(
            WalWriter::new(store.clone())
                .with_retry(config.tree_config.retry)
                .with_fence(mapping.fence().clone(), INITIAL_EPOCH),
        );
        let listener = WalListener::new(Arc::clone(&wal));
        let mut tree = BwTree::with_listener(
            config.tree_id,
            store.clone(),
            config.tree_config.clone(),
            listener,
        );
        tree.set_flush_mode(FlushMode::Deferred);
        tree.set_crash_switch(crash.clone());
        RwNode {
            tree: Arc::new(tree),
            wal,
            mapping,
            store,
            config,
            epoch: INITIAL_EPOCH,
            pending_publish: Mutex::new(Vec::new()),
            crash,
        }
    }

    /// Assembles a leader from recovered parts (promotion / recovery path).
    /// The epoch is taken from the WAL writer, which the caller has already
    /// fenced at the successor epoch.
    pub(crate) fn from_parts(
        tree: Arc<BwTree>,
        wal: Arc<WalWriter>,
        mapping: SharedMappingTable,
        store: AppendOnlyStore,
        config: RwNodeConfig,
        crash: CrashSwitch,
    ) -> Self {
        let epoch = wal.epoch();
        RwNode {
            tree,
            wal,
            mapping,
            store,
            config,
            epoch,
            pending_publish: Mutex::new(Vec::new()),
            crash,
        }
    }

    /// The leadership epoch this node writes under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The crash switch shared by this node and its tree — arm it to kill
    /// the node at a named crash point.
    pub fn crash_switch(&self) -> &CrashSwitch {
        &self.crash
    }

    /// The shared mapping table (hand this to RO nodes).
    pub fn mapping(&self) -> &SharedMappingTable {
        &self.mapping
    }

    /// Opens a WAL reader positioned at the log's start (hand to RO nodes).
    pub fn open_wal_reader(&self) -> WalReader {
        self.wal.open_reader()
    }

    /// The underlying tree (diagnostics and direct reads on the leader).
    pub fn tree(&self) -> &Arc<BwTree> {
        &self.tree
    }

    /// The shared store.
    pub fn store(&self) -> &AppendOnlyStore {
        &self.store
    }

    /// Last WAL LSN written.
    pub fn last_lsn(&self) -> Lsn {
        self.wal.last_lsn()
    }

    /// Writes a key/value pair. The WAL record is durable when this
    /// returns; the page flush happens later via group commit.
    ///
    /// The fence is checked *before* touching the tree: a zombie leader
    /// gets a structured [`bg3_storage::ErrorKind::EpochFenced`] error with
    /// its in-memory state unchanged, instead of diverging from the log it
    /// can no longer write.
    pub fn put(&self, key: &[u8], value: &[u8]) -> StorageResult<()> {
        self.wal.check_fence()?;
        self.tree.put(key, value)?;
        self.maybe_group_commit()
    }

    /// Deletes a key.
    pub fn delete(&self, key: &[u8]) -> StorageResult<()> {
        self.wal.check_fence()?;
        self.tree.delete(key)?;
        self.maybe_group_commit()
    }

    /// Reads from the leader's own memory (always current).
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        self.tree.get(key)
    }

    fn maybe_group_commit(&self) -> StorageResult<()> {
        if self.tree.dirty_count() >= self.config.group_commit_pages {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Flushes all dirty pages, publishes the new mapping version, and logs
    /// `CheckpointComplete` (Fig. 7 steps (7)–(8)). Returns the LSN the
    /// checkpoint covers.
    pub fn checkpoint(&self) -> StorageResult<Lsn> {
        // Reject zombie checkpoints up front: a sealed-out leader must not
        // flush page images (they would orphan-litter the base stream) and
        // must observe its demotion as a fenced *publish* attempt.
        self.mapping.check_epoch(self.epoch)?;
        // Everything logged up to here is covered once the flush lands.
        let upto = self.wal.last_lsn();
        let flushed = self.tree.flush_dirty()?;
        // Chaos hook: die after the flush but before the publish — new page
        // images are durable yet unreachable, and no `CheckpointComplete`
        // was logged, so recovery replays the WAL past the previous horizon.
        self.crash.fire(CrashPoint::MidGroupCommit)?;
        let mut pending = self.pending_publish.lock();
        pending.extend(flushed.iter().map(|f| {
            (
                PageTag {
                    tree: self.config.tree_id,
                    page: f.page,
                }
                .encode(),
                Some(f.addr),
            )
        }));
        let mut version = self.mapping.snapshot().version();
        if !pending.is_empty() {
            let after = self
                .mapping
                .publish_fenced(self.epoch, pending.iter().cloned())?;
            if after == version {
                // The publish RPC was dropped (injected fault). Keep the
                // batch staged and do NOT log `CheckpointComplete`: ROs
                // must not discard parked records that storage does not
                // reflect. The next checkpoint retries the publish.
                return Ok(upto);
            }
            pending.clear();
            version = after;
        }
        drop(pending);
        // The record names the exact mapping version covering `upto`, so a
        // follower adopts that version — not the live table — on replay.
        self.wal
            .append(
                self.config.tree_id as u64,
                0,
                WalPayload::CheckpointComplete {
                    upto: upto.0,
                    mapping_version: version,
                },
            )
            .map(|r| r.lsn)?;
        Ok(upto)
    }
}

impl std::fmt::Debug for RwNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwNode")
            .field("tree", &self.tree)
            .field("last_lsn", &self.last_lsn())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::{StoreBuilder, StoreConfig, StreamId};

    fn node(group_commit_pages: usize) -> RwNode {
        RwNode::new(
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            RwNodeConfig {
                group_commit_pages,
                ..RwNodeConfig::default()
            },
        )
    }

    #[test]
    fn writes_log_before_data_flush() {
        let n = node(usize::MAX); // never auto-commit
        n.put(b"k", b"v").unwrap();
        assert_eq!(n.last_lsn(), Lsn(1));
        let wal_bytes = n.store().stream_stats(StreamId::WAL).unwrap().valid_bytes;
        let base_bytes = n.store().stream_stats(StreamId::BASE).unwrap().valid_bytes;
        assert!(wal_bytes > 0, "WAL written synchronously");
        assert_eq!(base_bytes, 0, "page flush deferred");
        assert_eq!(n.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn checkpoint_flushes_publishes_and_logs() {
        let n = node(usize::MAX);
        n.put(b"a", b"1").unwrap();
        n.put(b"b", b"2").unwrap();
        let covered = n.checkpoint().unwrap();
        assert_eq!(covered, Lsn(2));
        assert!(!n.mapping().snapshot().is_empty(), "mapping published");
        // The checkpoint record follows the covered LSNs.
        let mut reader = n.open_wal_reader();
        let records = reader.fetch_new().unwrap();
        let last = records.last().unwrap();
        assert!(matches!(
            last.payload,
            WalPayload::CheckpointComplete {
                upto: 2,
                mapping_version: 1
            }
        ));
    }

    #[test]
    fn group_commit_triggers_on_dirty_threshold() {
        // Tiny pages: every key lands on its own page quickly via splits.
        let mut config = RwNodeConfig {
            group_commit_pages: 2,
            ..RwNodeConfig::default()
        };
        config.tree_config = config
            .tree_config
            .with_max_page_entries(4)
            .with_consolidate_threshold(2);
        let n = RwNode::new(
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            config,
        );
        for i in 0..64u32 {
            n.put(format!("key{i:03}").as_bytes(), b"v").unwrap();
        }
        assert!(
            n.mapping().snapshot().version() > 0,
            "auto group commit published at least once"
        );
        assert!(n.tree().dirty_count() < 64, "dirty set drained");
    }

    #[test]
    fn mid_group_commit_crash_flushes_but_never_publishes() {
        let n = node(usize::MAX);
        n.put(b"a", b"1").unwrap();
        n.crash_switch().arm(CrashPoint::MidGroupCommit);
        let err = n.checkpoint().unwrap_err();
        assert!(err.is_crash());
        // The page image landed on the base stream...
        let base_bytes = n.store().stream_stats(StreamId::BASE).unwrap().valid_bytes;
        assert!(base_bytes > 0, "flush happened before the crash");
        // ...but nothing was published and no checkpoint record was logged,
        // so recovery would replay the WAL from the start.
        assert!(n.mapping().snapshot().is_empty(), "publish never ran");
        let mut reader = n.open_wal_reader();
        let records = reader.fetch_new().unwrap();
        assert!(
            records
                .iter()
                .all(|r| !matches!(r.payload, WalPayload::CheckpointComplete { .. })),
            "no checkpoint horizon advanced"
        );
    }

    #[test]
    fn wal_appends_retry_through_transient_faults() {
        use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // Every WAL append fails twice before succeeding; the writer's
        // retry policy absorbs it so puts never observe an error.
        let plan = FaultPlan::seeded(7).with_rule(
            FaultRule::new(FaultOp::Append, FaultKind::AppendFail, 1.0)
                .on_stream(StreamId::WAL)
                .at_most(2),
        );
        let store = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let n = RwNode::new(store.clone(), RwNodeConfig::default());
        n.put(b"k", b"v").unwrap();
        assert_eq!(n.last_lsn(), Lsn(1));
        assert_eq!(store.fault_injector().total_fired(), 2);
        assert_eq!(n.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn sealed_epoch_turns_the_leader_into_a_fenced_zombie() {
        let n = node(usize::MAX);
        n.put(b"before", b"v").unwrap();
        assert_eq!(n.epoch(), bg3_storage::INITIAL_EPOCH);
        // A successor seals the next epoch (what promotion does).
        n.mapping().seal_epoch(n.epoch() + 1).unwrap();
        // Writes are rejected before touching the tree...
        let entries_before = n.tree().entry_count();
        assert!(n.put(b"zombie", b"w").unwrap_err().is_fenced());
        assert!(n.delete(b"before").unwrap_err().is_fenced());
        assert_eq!(n.tree().entry_count(), entries_before, "tree untouched");
        // ...and so are checkpoints (counted as fenced publish attempts).
        assert!(n.checkpoint().unwrap_err().is_fenced());
        let fence = n.mapping().fence().snapshot();
        assert!(fence.rejected_appends >= 2);
        assert!(fence.rejected_publishes >= 1);
        // Reads on the zombie still work (stale but local).
        assert_eq!(n.get(b"before").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn dropped_publish_is_restaged_and_checkpoint_withholds_the_horizon() {
        use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule};
        let plan = FaultPlan::seeded(11).with_rule(
            FaultRule::new(FaultOp::MappingPublish, FaultKind::PublishDrop, 1.0).at_most(1),
        );
        let store = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let n = RwNode::new(
            store,
            RwNodeConfig {
                group_commit_pages: usize::MAX,
                ..RwNodeConfig::default()
            },
        );
        n.put(b"k", b"v").unwrap();
        // First checkpoint: flush lands, publish RPC is dropped — no
        // CheckpointComplete may be logged.
        n.checkpoint().unwrap();
        assert!(n.mapping().snapshot().is_empty(), "publish was dropped");
        let mut reader = n.open_wal_reader();
        assert!(
            reader
                .fetch_new()
                .unwrap()
                .iter()
                .all(|r| !matches!(r.payload, WalPayload::CheckpointComplete { .. })),
            "horizon withheld while storage lags"
        );
        // Second checkpoint: the staged batch is re-published and the
        // horizon advances.
        n.checkpoint().unwrap();
        assert!(
            !n.mapping().snapshot().is_empty(),
            "restaged publish landed"
        );
        assert!(reader
            .fetch_new()
            .unwrap()
            .iter()
            .any(|r| matches!(r.payload, WalPayload::CheckpointComplete { .. })));
    }

    #[test]
    fn checkpoint_of_clean_node_still_logs_progress() {
        let n = node(usize::MAX);
        n.put(b"x", b"y").unwrap();
        n.checkpoint().unwrap();
        let v1 = n.mapping().snapshot().version();
        n.checkpoint().unwrap(); // nothing dirty
        assert_eq!(n.mapping().snapshot().version(), v1, "no spurious publish");
    }
}
