//! Simple latency statistics over simulated-clock durations.

use parking_lot::Mutex;

/// Collects nanosecond samples and reports count/mean/percentiles.
///
/// Samples are kept exactly up to a cap and then reservoir-style replaced,
/// which keeps long experiments O(1) in memory while preserving percentile
/// fidelity well enough for the sync experiments (Fig. 13/14).
#[derive(Debug)]
pub struct LatencyRecorder {
    inner: Mutex<Inner>,
    cap: usize,
}

#[derive(Debug, Default)]
struct Inner {
    samples: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new(65_536)
    }
}

impl LatencyRecorder {
    /// Creates a recorder retaining at most `cap` raw samples.
    pub fn new(cap: usize) -> Self {
        LatencyRecorder {
            inner: Mutex::new(Inner::default()),
            cap: cap.max(1),
        }
    }

    /// Records one sample (nanoseconds).
    pub fn record(&self, nanos: u64) {
        let mut inner = self.inner.lock();
        inner.count += 1;
        inner.sum += nanos;
        inner.max = inner.max.max(nanos);
        if inner.samples.len() < self.cap {
            inner.samples.push(nanos);
        } else {
            // Deterministic reservoir: overwrite a pseudo-random slot
            // derived from the running count (no RNG dependency).
            let cap = self.cap as u64;
            let slot = (inner.count.wrapping_mul(0x9e37_79b9_7f4a_7c15) % cap) as usize;
            inner.samples[slot] = nanos;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        let inner = self.inner.lock();
        inner.sum.checked_div(inner.count).unwrap_or(0)
    }

    /// Maximum observed latency.
    pub fn max_nanos(&self) -> u64 {
        self.inner.lock().max
    }

    /// Approximate percentile (0.0..=1.0) from retained samples.
    pub fn percentile_nanos(&self, q: f64) -> u64 {
        let inner = self.inner.lock();
        if inner.samples.is_empty() {
            return 0;
        }
        let mut sorted = inner.samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Clears all state.
    pub fn reset(&self) {
        *self.inner.lock() = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let r = LatencyRecorder::new(16);
        for v in [10, 20, 30, 40] {
            r.record(v);
        }
        assert_eq!(r.count(), 4);
        assert_eq!(r.mean_nanos(), 25);
        assert_eq!(r.max_nanos(), 40);
        assert_eq!(r.percentile_nanos(0.0), 10);
        assert_eq!(r.percentile_nanos(1.0), 40);
        assert_eq!(r.percentile_nanos(0.5), 30, "upper median of 4");
    }

    #[test]
    fn empty_recorder_reports_zero() {
        let r = LatencyRecorder::default();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean_nanos(), 0);
        assert_eq!(r.percentile_nanos(0.5), 0);
    }

    #[test]
    fn reservoir_keeps_stats_exact_past_the_cap() {
        let r = LatencyRecorder::new(8);
        for v in 0..1000u64 {
            r.record(v);
        }
        assert_eq!(r.count(), 1000);
        assert_eq!(r.mean_nanos(), 499);
        assert_eq!(r.max_nanos(), 999);
    }

    #[test]
    fn reset_clears_everything() {
        let r = LatencyRecorder::new(8);
        r.record(5);
        r.reset();
        assert_eq!(r.count(), 0);
        assert_eq!(r.max_nanos(), 0);
    }
}
