//! Crash recovery for an RW node.
//!
//! A leader's in-memory Bw-tree is reconstructible entirely from shared
//! state, because BG3 writes the WAL before acknowledging and publishes the
//! mapping table only after dirty pages are flushed (§3.4):
//!
//! 1. the **mapping table** names every flushed page's latest base image;
//! 2. WAL records after the last `CheckpointComplete` describe everything
//!    newer than those images;
//! 3. `Split` records (any LSN) rebuild the routing table from scratch —
//!    every tree's first leaf is page 1 by construction.
//!
//! Replaying WAL records older than a page's recovered image is safe: the
//! record stream is ordered and per-key last-writer-wins, so re-applying a
//! covered prefix converges to the same state (the same argument that makes
//! RO lazy replay correct). The same property makes recovery robust to a
//! damaged mapped image: a page whose base image fails integrity (rot,
//! quarantine, a reclaimed extent) is rebuilt from its full WAL history
//! instead of failing the failover.

use bg3_bwtree::tree::FIRST_LEAF;
use bg3_bwtree::{decode_base_page, BwTree, BwTreeConfig, Entries, PageTag, TreeEventListener};
use bg3_storage::{
    AppendOnlyStore, ErrorKind, PageAddr, SharedMappingTable, StorageError, StorageOp,
    StorageResult,
};
use bg3_wal::{Lsn, WalPayload, WalRecord};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Rebuilds tree `tree_id` from the shared store.
///
/// `records` must be the full WAL stream in LSN order (from a
/// [`bg3_wal::WalReader`] positioned at the start). The recovered tree has
/// consolidated pages, an empty dirty set, and correct `entry_count`.
pub fn recover_tree(
    tree_id: u32,
    store: AppendOnlyStore,
    mapping: &SharedMappingTable,
    records: &[WalRecord],
    config: BwTreeConfig,
    listener: Arc<dyn TreeEventListener>,
) -> StorageResult<BwTree> {
    // 0. Fence zombies. A legitimate log's epoch is monotonically
    //    non-decreasing, so a record whose epoch regresses below the running
    //    maximum was appended by a deposed leader racing its own demise.
    //    Drop such records before every pass — including the checkpoint
    //    scan, whose horizon a zombie must not be allowed to advance.
    let mut max_epoch = 0u64;
    let records: Vec<&WalRecord> = records
        .iter()
        .filter(|r| {
            if r.epoch < max_epoch {
                return false;
            }
            max_epoch = r.epoch;
            true
        })
        .collect();

    // 1. Checkpoint horizon: content records at or below it are reflected
    //    in the mapping's page images.
    let durable = records
        .iter()
        .filter_map(|r| match r.payload {
            WalPayload::CheckpointComplete { upto, .. } if r.tree == tree_id as u64 => Some(upto),
            _ => None,
        })
        .max()
        .map(Lsn)
        .unwrap_or(Lsn::ZERO);

    // 2. Page images from the published mapping. A mapped image that fails
    //    integrity — a rotted frame, a quarantined or since-reclaimed
    //    extent, or bytes that no longer decode — does not fail recovery:
    //    `records` is the page's *full* WAL history, so the page is rebuilt
    //    from replay alone starting from an empty image (the same
    //    convergence argument as above, with the covered prefix replayed
    //    instead of skipped). Rebuilt pages come back dirty with no base
    //    address, so the next checkpoint re-flushes them and republishes a
    //    verified mapping entry. Transient faults still surface as errors.
    let snapshot = mapping.snapshot();
    let mut pages: HashMap<u32, (Entries, Option<PageAddr>)> = HashMap::new();
    let mut routing: BTreeMap<Vec<u8>, u32> = BTreeMap::new();
    routing.insert(Vec::new(), FIRST_LEAF);
    pages.insert(FIRST_LEAF, (Entries::new(), None));
    for record in &records {
        if record.tree != tree_id as u64 {
            continue;
        }
        // Pre-create every page the log mentions so replay has a slot.
        if record.payload.is_page_scoped() {
            pages.entry(record.page as u32).or_default();
        }
    }
    let mut rebuild: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for (&page, slot) in pages.iter_mut() {
        let tag = PageTag {
            tree: tree_id,
            page,
        }
        .encode();
        if let Some(addr) = snapshot.get(tag) {
            match store.read(addr) {
                Ok(bytes) => match decode_base_page(&bytes) {
                    Ok(entries) => {
                        slot.0 = entries;
                        slot.1 = Some(addr);
                    }
                    Err(_) => {
                        rebuild.insert(page);
                    }
                },
                Err(err) if image_lost(&err) => {
                    rebuild.insert(page);
                }
                Err(err) => return Err(err),
            }
        }
    }

    // 3. Replay. Structural records rebuild routing unconditionally; content
    //    records above the checkpoint horizon patch page entries (replaying
    //    a covered prefix would also converge, but skipping it is cheaper).
    //    Pages whose mapped image was lost replay their whole history.
    //    Pages patched past the horizon come back dirty: their memory is
    //    newer than their mapped image, so they must re-flush before the
    //    next checkpoint advances the horizon over them.
    let mut dirty: std::collections::HashSet<u32> = std::collections::HashSet::new();
    dirty.extend(rebuild.iter().copied());
    for record in &records {
        if record.tree != tree_id as u64 {
            continue;
        }
        let page = record.page as u32;
        let replay = record.lsn > durable || rebuild.contains(&page);
        if record.lsn > durable && record.payload.is_page_scoped() {
            dirty.insert(page);
        }
        match &record.payload {
            WalPayload::Split {
                right_page,
                separator,
            } => {
                routing.insert(separator.clone(), *right_page as u32);
                if replay {
                    let slot = pages.entry(page).or_default();
                    slot.0.retain(|(k, _)| k.as_slice() < separator.as_slice());
                }
                if record.lsn > durable {
                    dirty.insert(*right_page as u32);
                }
            }
            WalPayload::Upsert { key, value } if replay => {
                let entries = &mut pages.entry(page).or_default().0;
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => entries[i].1 = value.clone(),
                    Err(i) => entries.insert(i, (key.clone(), value.clone())),
                }
            }
            WalPayload::Delete { key } if replay => {
                let entries = &mut pages.entry(page).or_default().0;
                if let Ok(i) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    entries.remove(i);
                }
            }
            WalPayload::PageImage { image } | WalPayload::NewPage { image } if replay => {
                pages.entry(page).or_default().0 = decode_base_page(image).map_err(|_| {
                    StorageError::new(bg3_storage::ErrorKind::CorruptRecord, StorageOp::WalReplay)
                })?;
            }
            _ => {}
        }
    }

    // 4. Assemble. Pages resurrected from replay lose their (stale) base
    //    address if the replay rewrote them past the image — keeping the
    //    address is still correct because it is only used for relocation
    //    fix-ups and cold reads, both of which re-verify through storage.
    Ok(BwTree::assemble(
        tree_id,
        store,
        config,
        listener,
        routing,
        pages
            .into_iter()
            .map(|(page, (entries, addr))| (page, entries, addr))
            .collect(),
        dirty.into_iter().collect(),
    ))
}

/// True when a mapped base image is damaged or gone — a rotted frame, a
/// quarantined or since-reclaimed extent, a stale address — as opposed to a
/// transient I/O failure worth surfacing to the caller. Recovery responds
/// by rebuilding the page from its full WAL history.
fn image_lost(err: &StorageError) -> bool {
    matches!(
        err.kind,
        ErrorKind::ChecksumMismatch
            | ErrorKind::CorruptRecord
            | ErrorKind::AddrNotFound
            | ErrorKind::AddrOutOfBounds
            | ErrorKind::ExtentQuarantined(_)
            | ErrorKind::UnknownExtent(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rw::{RwNode, RwNodeConfig};
    use bg3_bwtree::events::NullListener;
    use bg3_storage::{StoreBuilder, StoreConfig};

    fn recover_from(rw: &RwNode) -> BwTree {
        let mut reader = rw.open_wal_reader();
        let records = reader.fetch_new().unwrap();
        recover_tree(
            1,
            rw.store().clone(),
            rw.mapping(),
            &records,
            BwTreeConfig::default(),
            Arc::new(NullListener),
        )
        .unwrap()
    }

    fn assert_same_content(a: &BwTree, b: &RwNode, keys: impl Iterator<Item = Vec<u8>>) {
        for key in keys {
            assert_eq!(
                a.get(&key).unwrap(),
                b.get(&key).unwrap(),
                "divergence at {key:?}"
            );
        }
        assert_eq!(a.entry_count(), b.tree().entry_count());
        assert_eq!(
            a.scan_range(None, None, usize::MAX),
            b.tree().scan_range(None, None, usize::MAX)
        );
    }

    #[test]
    fn recovers_unflushed_writes_from_wal_alone() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let rw = RwNode::new(
            store,
            RwNodeConfig {
                group_commit_pages: usize::MAX,
                ..RwNodeConfig::default()
            },
        );
        for i in 0..50u32 {
            rw.put(format!("key{i:03}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        rw.delete(b"key007").unwrap();
        let recovered = recover_from(&rw);
        assert_same_content(
            &recovered,
            &rw,
            (0..50).map(|i| format!("key{i:03}").into_bytes()),
        );
    }

    #[test]
    fn recovers_across_checkpoints_and_splits() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let mut config = RwNodeConfig {
            group_commit_pages: usize::MAX,
            ..RwNodeConfig::default()
        };
        config.tree_config = config
            .tree_config
            .with_max_page_entries(8)
            .with_consolidate_threshold(4);
        let rw = RwNode::new(store, config);
        for i in 0..60u32 {
            rw.put(format!("key{i:03}").as_bytes(), &i.to_le_bytes())
                .unwrap();
            if i % 20 == 19 {
                rw.checkpoint().unwrap();
            }
        }
        // More writes after the last checkpoint, including deletes.
        for i in 0..10u32 {
            rw.delete(format!("key{i:03}").as_bytes()).unwrap();
        }
        assert!(rw.tree().page_count() > 1, "splits happened");
        let mut reader = rw.open_wal_reader();
        let records = reader.fetch_new().unwrap();
        let recovered = recover_tree(
            1,
            rw.store().clone(),
            rw.mapping(),
            &records,
            bg3_bwtree::BwTreeConfig::default()
                .with_max_page_entries(8)
                .with_consolidate_threshold(4),
            Arc::new(NullListener),
        )
        .unwrap();
        assert_same_content(
            &recovered,
            &rw,
            (0..60).map(|i| format!("key{i:03}").into_bytes()),
        );
        assert_eq!(recovered.page_count(), rw.tree().page_count());
    }

    #[test]
    fn recovered_tree_accepts_new_writes() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let rw = RwNode::new(store, RwNodeConfig::default());
        for i in 0..30u32 {
            rw.put(format!("k{i:02}").as_bytes(), b"v").unwrap();
        }
        rw.checkpoint().unwrap();
        let recovered = recover_from(&rw);
        recovered.put(b"post-recovery", b"ok").unwrap();
        assert_eq!(
            recovered.get(b"post-recovery").unwrap(),
            Some(b"ok".to_vec())
        );
        assert_eq!(recovered.entry_count(), 31);
    }

    #[test]
    fn corrupt_mapped_image_is_rebuilt_from_wal_history() {
        use bg3_storage::StreamId;
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let rw = RwNode::new(store, RwNodeConfig::default());
        for i in 0..10u32 {
            rw.put(format!("k{i:02}").as_bytes(), b"v").unwrap();
        }
        rw.checkpoint().unwrap();
        // Point the mapping at undecodable bytes, as a torn or misdirected
        // base-stream write would. The WAL still names every acked write,
        // so recovery rebuilds the page from replay alone.
        let garbage = rw
            .store()
            .append(StreamId::BASE, b"\xff\xff\xff\xffnot a page", 0, None)
            .unwrap();
        let tag = PageTag { tree: 1, page: 1 }.encode();
        rw.mapping().publish([(tag, Some(garbage))]);
        let recovered = recover_from(&rw);
        assert_same_content(
            &recovered,
            &rw,
            (0..10).map(|i| format!("k{i:02}").into_bytes()),
        );
        assert!(
            recovered.dirty_count() > 0,
            "a rebuilt page re-flushes before the next checkpoint"
        );
    }

    #[test]
    fn rotted_mapped_image_is_rebuilt_from_wal_history() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let rw = RwNode::new(store, RwNodeConfig::default());
        for i in 0..20u32 {
            rw.put(format!("k{i:02}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        rw.checkpoint().unwrap();
        // Silent bit rot lands on the checkpointed base image itself.
        let tag = PageTag { tree: 1, page: 1 }.encode();
        let addr = rw.mapping().snapshot().get(tag).expect("page 1 mapped");
        rw.store().corrupt_record_bit(addr, 11).unwrap();
        let recovered = recover_from(&rw);
        assert_same_content(
            &recovered,
            &rw,
            (0..20).map(|i| format!("k{i:02}").into_bytes()),
        );
    }

    #[test]
    fn zombie_epoch_records_are_fenced_out_of_replay() {
        use bg3_storage::SimInstant;
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let rw = RwNode::new(
            store,
            RwNodeConfig {
                group_commit_pages: usize::MAX,
                ..RwNodeConfig::default()
            },
        );
        rw.put(b"real", b"1").unwrap();
        rw.put(b"also-real", b"2").unwrap();
        let mut reader = rw.open_wal_reader();
        let mut records = reader.fetch_new().unwrap();
        let max_epoch = records.iter().map(|r| r.epoch).max().unwrap();
        let next_lsn = records.last().unwrap().lsn.next();
        // A record from a new leader's epoch, then a straggler the deposed
        // zombie managed to append before the store fenced it.
        records.push(WalRecord {
            lsn: next_lsn,
            epoch: max_epoch + 1,
            tree: 1,
            page: 1,
            timestamp: SimInstant(0),
            payload: WalPayload::Upsert {
                key: b"new-era".to_vec(),
                value: b"3".to_vec(),
            },
        });
        records.push(WalRecord {
            lsn: next_lsn.next(),
            epoch: max_epoch,
            tree: 1,
            page: 1,
            timestamp: SimInstant(0),
            payload: WalPayload::Upsert {
                key: b"zombie".to_vec(),
                value: b"x".to_vec(),
            },
        });
        let recovered = recover_tree(
            1,
            rw.store().clone(),
            rw.mapping(),
            &records,
            BwTreeConfig::default(),
            Arc::new(NullListener),
        )
        .unwrap();
        assert_eq!(recovered.get(b"real").unwrap(), Some(b"1".to_vec()));
        assert_eq!(recovered.get(b"new-era").unwrap(), Some(b"3".to_vec()));
        assert_eq!(recovered.get(b"zombie").unwrap(), None, "zombie fenced");
    }

    #[test]
    fn empty_log_recovers_an_empty_tree() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let mapping = SharedMappingTable::for_store(&store);
        let tree = recover_tree(
            1,
            store,
            &mapping,
            &[],
            BwTreeConfig::default(),
            Arc::new(NullListener),
        )
        .unwrap();
        assert_eq!(tree.entry_count(), 0);
        assert_eq!(tree.get(b"anything").unwrap(), None);
    }
}
