//! The read-only (follower) node.

use crate::latency::LatencyRecorder;
use crate::recovery::recover_tree;
use crate::rw::{RwNode, RwNodeConfig};
use crate::wal_listener::WalListener;
use bg3_bwtree::tree::{FlushMode, FIRST_LEAF};
use bg3_bwtree::{decode_base_page, Entries, PageTag, TreeEventListener};
use bg3_storage::{
    AppendOnlyStore, CrashSwitch, ErrorKind, MappingSnapshot, PageAddr, RetryPolicy,
    SharedMappingTable, StorageError, StorageOp, StorageResult, TraceKind, INITIAL_EPOCH,
};
use bg3_wal::{Lsn, WalPayload, WalReader, WalWriter};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// RO-node configuration.
#[derive(Debug, Clone)]
pub struct RoNodeConfig {
    /// Maximum pages cached in memory; beyond it, the least recently used
    /// page is evicted (the paper: "the cache on RO node dynamically evicts
    /// pages from DRAM based on the read requests").
    pub cache_capacity_pages: usize,
    /// Virtual-time budget for [`RoNode::ensure_seen`]: waiting on a
    /// session token longer than this returns
    /// [`bg3_storage::ErrorKind::Timeout`] instead of spinning on a log a
    /// dead leader will never extend.
    pub ensure_seen_timeout_nanos: u64,
    /// Virtual time burned per empty poll while waiting in
    /// [`RoNode::ensure_seen`] (models the tailing interval).
    pub ensure_seen_poll_nanos: u64,
}

impl Default for RoNodeConfig {
    fn default() -> Self {
        RoNodeConfig {
            cache_capacity_pages: 4096,
            ensure_seen_timeout_nanos: 200_000_000, // 200ms of virtual time
            ensure_seen_poll_nanos: 1_000_000,      // 1ms tailing interval
        }
    }
}

struct CachedPage {
    entries: Entries,
    /// Highest parked-record LSN already applied to `entries`.
    applied_lsn: Lsn,
    last_access: u64,
}

type PageKey = (u64, u64); // (tree, page)

struct RoInner {
    /// Per-tree routing table, rebuilt from WAL `Split` records.
    routing: HashMap<u64, BTreeMap<Vec<u8>, u64>>,
    cache: HashMap<PageKey, CachedPage>,
    /// The page-indexed log area (§3.4 "I/O Efficiency"): parked records
    /// waiting for lazy replay, in LSN order per page.
    log_area: HashMap<PageKey, Vec<(Lsn, WalPayload)>>,
    /// Highest leadership epoch observed in the log. Records from a lower
    /// epoch arriving *after* a higher one are zombie artifacts (a fenced
    /// leader racing its demotion) and are skipped defensively.
    max_epoch: u64,
    /// The mapping version this follower reads base images through. Only
    /// advanced when a `CheckpointComplete` is *processed* — never the live
    /// table, which may already reflect WAL records this follower has not
    /// replayed (reading it would serve data from the future and corrupt
    /// lazy replay). The multi-version store keeps superseded images
    /// readable until extent reclamation, so an adopted snapshot stays
    /// resolvable while the follower catches up.
    adopted: MappingSnapshot,
}

/// Counters describing an RO node's behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoStatsSnapshot {
    /// Point lookups served.
    pub reads: u64,
    /// Lookups served from cached pages.
    pub cache_hits: u64,
    /// Lookups that fetched a page image from shared storage.
    pub cache_misses: u64,
    /// WAL records parked into the log area.
    pub records_parked: u64,
    /// Parked records applied to cached pages (lazy replay).
    pub records_applied: u64,
    /// Parked records discarded after a checkpoint covered them.
    pub records_discarded: u64,
    /// Reads served while the node was flagged stale (leader dead, no new
    /// WAL arriving) — possibly missing the leader's final writes.
    pub stale_reads: u64,
    /// Zombie records (epoch below the log's high-water mark) skipped.
    pub fenced_records_skipped: u64,
    /// WAL records past `seen_lsn` replayed during promotion.
    pub promotion_replay_records: u64,
    /// Cold page reads re-attempted after a retryable verification failure.
    pub corrupt_read_retries: u64,
    /// Cold page reads that fell back to the live mapping's address after
    /// the adopted address failed verification persistently.
    pub corrupt_read_failovers: u64,
}

/// A follower: tails the WAL, parks page records for lazy replay, serves
/// reads from its cache + the published mapping version (Fig. 7, right).
pub struct RoNode {
    store: AppendOnlyStore,
    mapping: SharedMappingTable,
    reader: Mutex<WalReader>,
    inner: Mutex<RoInner>,
    latency: LatencyRecorder,
    config: RoNodeConfig,
    access_clock: AtomicU64,
    reads: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    records_parked: AtomicU64,
    records_applied: AtomicU64,
    records_discarded: AtomicU64,
    stale_reads: AtomicU64,
    fenced_records_skipped: AtomicU64,
    promotion_replay_records: AtomicU64,
    corrupt_read_retries: AtomicU64,
    corrupt_read_failovers: AtomicU64,
    /// Set by the failover coordinator while the leader is down: reads
    /// still succeed but are counted as (possibly) stale.
    serving_stale: AtomicBool,
}

impl RoNode {
    /// Attaches a follower to the shared store, the leader's mapping table,
    /// and a WAL reader (from [`crate::RwNode::open_wal_reader`]).
    pub fn new(
        store: AppendOnlyStore,
        mapping: SharedMappingTable,
        reader: WalReader,
        config: RoNodeConfig,
    ) -> Self {
        let adopted = mapping.snapshot();
        RoNode {
            store,
            mapping,
            reader: Mutex::new(reader),
            inner: Mutex::new(RoInner {
                routing: HashMap::new(),
                cache: HashMap::new(),
                log_area: HashMap::new(),
                max_epoch: INITIAL_EPOCH,
                adopted,
            }),
            latency: LatencyRecorder::default(),
            config,
            access_clock: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            records_parked: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            records_discarded: AtomicU64::new(0),
            stale_reads: AtomicU64::new(0),
            fenced_records_skipped: AtomicU64::new(0),
            promotion_replay_records: AtomicU64::new(0),
            corrupt_read_retries: AtomicU64::new(0),
            corrupt_read_failovers: AtomicU64::new(0),
            serving_stale: AtomicBool::new(false),
        }
    }

    /// Leader-to-follower propagation latency (record timestamp → poll),
    /// on the simulated clock.
    pub fn sync_latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RoStatsSnapshot {
        RoStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            records_parked: self.records_parked.load(Ordering::Relaxed),
            records_applied: self.records_applied.load(Ordering::Relaxed),
            records_discarded: self.records_discarded.load(Ordering::Relaxed),
            stale_reads: self.stale_reads.load(Ordering::Relaxed),
            fenced_records_skipped: self.fenced_records_skipped.load(Ordering::Relaxed),
            promotion_replay_records: self.promotion_replay_records.load(Ordering::Relaxed),
            corrupt_read_retries: self.corrupt_read_retries.load(Ordering::Relaxed),
            corrupt_read_failovers: self.corrupt_read_failovers.load(Ordering::Relaxed),
        }
    }

    /// Flags (or clears) stale serving: while set, reads are still served —
    /// availability through the outage — but counted as possibly stale.
    pub fn set_serving_stale(&self, stale: bool) {
        self.serving_stale.store(stale, Ordering::Relaxed);
    }

    /// True while the failover coordinator has flagged reads as stale.
    pub fn is_serving_stale(&self) -> bool {
        self.serving_stale.load(Ordering::Relaxed)
    }

    /// The highest LSN this follower has consumed from the WAL. Use with
    /// [`RoNode::ensure_seen`] for read-your-writes session consistency:
    /// the leader hands the client `rw.last_lsn()` as a session token, and
    /// any follower can serve the client once it has caught up to it.
    pub fn seen_lsn(&self) -> Lsn {
        self.reader.lock().position()
    }

    /// Catches up to at least `lsn`, polling the WAL until the token is
    /// covered or `ensure_seen_timeout_nanos` of virtual time elapse.
    ///
    /// Returns `Ok(true)` once the follower covers the token. A token the
    /// leader never durably logged — e.g. because the leader is dead —
    /// surfaces as [`bg3_storage::ErrorKind::Timeout`] rather than an
    /// indefinite wait, so session routing can fail over to another node.
    pub fn ensure_seen(&self, lsn: Lsn) -> StorageResult<bool> {
        let clock = self.store.clock();
        let start = clock.now();
        loop {
            if self.seen_lsn() >= lsn {
                return Ok(true);
            }
            let advanced = self.poll()?;
            if self.seen_lsn() >= lsn {
                return Ok(true);
            }
            let waited = clock.now().duration_since(start);
            if advanced == 0 {
                if waited >= self.config.ensure_seen_timeout_nanos {
                    return Err(StorageError::timeout(StorageOp::WalReplay, waited));
                }
                // Idle tailing interval: burn virtual time so a dead leader
                // cannot stall the session forever.
                clock.advance_nanos(self.config.ensure_seen_poll_nanos.max(1));
            }
        }
    }

    /// Tails the WAL: parks page records, applies splits to the routing
    /// table eagerly, and processes checkpoints. Returns the number of new
    /// records consumed.
    pub fn poll(&self) -> StorageResult<usize> {
        let records = self.reader.lock().fetch_new()?;
        if records.is_empty() {
            return Ok(0);
        }
        let now = self.store.clock().now();
        let mut inner = self.inner.lock();
        let count = records.len();
        // The reader's position already covers this whole batch, so every
        // record must be consumed even if one of them reports corruption —
        // aborting midway would silently lose the rest of the batch.
        let mut first_error: Option<StorageError> = None;
        for record in records {
            // Defense in depth: with store-side fencing a zombie record
            // should never land, but replay tolerates one anyway by
            // skipping records whose epoch regressed.
            if record.epoch < inner.max_epoch {
                self.fenced_records_skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            inner.max_epoch = record.epoch;
            self.latency.record(now.duration_since(record.timestamp));
            match &record.payload {
                WalPayload::CheckpointComplete {
                    upto,
                    mapping_version,
                } => {
                    if let Err(e) = self.handle_checkpoint(&mut inner, Lsn(*upto), *mapping_version)
                    {
                        first_error.get_or_insert(e);
                    }
                }
                WalPayload::Split {
                    right_page,
                    separator,
                } => {
                    // Routing must be current before any read routes a key;
                    // the content truncation of the left page stays lazy.
                    inner
                        .routing
                        .entry(record.tree)
                        .or_insert_with(Self::fresh_routing)
                        .insert(separator.clone(), *right_page);
                    self.park(
                        &mut inner,
                        record.tree,
                        record.page,
                        record.lsn,
                        record.payload,
                    );
                }
                _ => {
                    self.park(
                        &mut inner,
                        record.tree,
                        record.page,
                        record.lsn,
                        record.payload,
                    );
                }
            }
        }
        drop(inner);
        self.store
            .trace()
            .emit(now.0, TraceKind::RoReplay, self.seen_lsn().0, count as u64);
        match first_error {
            Some(e) => Err(e),
            None => Ok(count),
        }
    }

    fn fresh_routing() -> BTreeMap<Vec<u8>, u64> {
        let mut routing = BTreeMap::new();
        routing.insert(Vec::new(), FIRST_LEAF as u64);
        routing
    }

    fn park(&self, inner: &mut RoInner, tree: u64, page: u64, lsn: Lsn, payload: WalPayload) {
        inner
            .log_area
            .entry((tree, page))
            .or_default()
            .push((lsn, payload));
        self.records_parked.fetch_add(1, Ordering::Relaxed);
    }

    /// Checkpoint: shared storage now reflects LSNs `<= upto`. Apply covered
    /// records to any *cached* pages (so dropping them loses nothing), then
    /// discard them; uncached pages will be re-fetched current from storage.
    ///
    /// A record that fails to apply (torn page image) evicts the affected
    /// page — storage reflects the checkpoint, so a cold re-read converges —
    /// and the first such corruption is reported to the caller.
    fn handle_checkpoint(
        &self,
        inner: &mut RoInner,
        upto: Lsn,
        mapping_version: u64,
    ) -> StorageResult<()> {
        // Adopt the exact mapping version this checkpoint published. Cold
        // reads resolve through it from now on; everything it covers is
        // about to be applied-and-discarded below, so image + parked
        // records stay an exact prefix of the log. The *live* table is
        // deliberately not used — the leader may have published newer
        // versions covering WAL records this follower has not replayed.
        // If retention already pruned the version (a follower lagging by
        // over a thousand checkpoints), fall back to the live snapshot:
        // bounded staleness degrades to at-least-once visibility instead
        // of data loss, because newer images only ever cover *more* LSNs.
        if mapping_version > inner.adopted.version() {
            let snapshot = self
                .mapping
                .snapshot_at(mapping_version)
                .unwrap_or_else(|| self.mapping.snapshot());
            // Integrity gate at the adoption boundary: never route cold
            // reads through a mapping plane whose incremental fingerprint
            // disagrees with its own contents. The stale adopted snapshot
            // keeps serving (bounded staleness beats garbage addresses).
            if !snapshot.verify_integrity() {
                return Err(StorageError::new(
                    ErrorKind::ChecksumMismatch,
                    StorageOp::MappingPublish,
                ));
            }
            inner.adopted = snapshot;
        }
        let mut first_error: Option<bg3_storage::StorageError> = None;
        let RoInner {
            cache, log_area, ..
        } = inner;
        log_area.retain(|page_key, records| {
            let covered = records.iter().filter(|(lsn, _)| *lsn <= upto).count();
            if covered > 0 {
                let mut drop_page = false;
                if let Some(cached) = cache.get_mut(page_key) {
                    for (lsn, payload) in records.iter().take(covered) {
                        if *lsn > cached.applied_lsn {
                            match Self::apply_to_entries(&mut cached.entries, payload) {
                                Ok(()) => {
                                    cached.applied_lsn = *lsn;
                                    self.records_applied.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    drop_page = true;
                                    first_error.get_or_insert(e);
                                    break;
                                }
                            }
                        }
                    }
                }
                if drop_page {
                    cache.remove(page_key);
                }
                records.drain(..covered);
                self.records_discarded
                    .fetch_add(covered as u64, Ordering::Relaxed);
            }
            !records.is_empty()
        });
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn apply_to_entries(entries: &mut Entries, payload: &WalPayload) -> StorageResult<()> {
        match payload {
            WalPayload::Upsert { key, value } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => entries[i].1 = value.clone(),
                    Err(i) => entries.insert(i, (key.clone(), value.clone())),
                }
            }
            WalPayload::Delete { key } => {
                if let Ok(i) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    entries.remove(i);
                }
            }
            WalPayload::PageImage { image } | WalPayload::NewPage { image } => {
                // A torn image must not abort the node: surface it as
                // corruption so the read path can retry/fail over.
                *entries = decode_base_page(image).map_err(|_| {
                    StorageError::new(bg3_storage::ErrorKind::CorruptRecord, StorageOp::WalReplay)
                })?;
            }
            WalPayload::Split { separator, .. } => {
                // This page is the left half: keys >= separator moved away.
                entries.retain(|(k, _)| k.as_slice() < separator.as_slice());
            }
            // Not page-scoped: never parked against a page.
            WalPayload::CheckpointComplete { .. } | WalPayload::ForestSplitOut { .. } => {}
        }
        Ok(())
    }

    /// Point lookup with lazy replay (Fig. 7 steps (4)–(6)).
    pub fn get(&self, tree: u64, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if self.is_serving_stale() {
            self.stale_reads.fetch_add(1, Ordering::Relaxed);
        }
        let stamp = self.access_clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let page = {
            let routing = inner
                .routing
                .entry(tree)
                .or_insert_with(Self::fresh_routing);
            *routing
                .range::<[u8], _>((Bound::Unbounded, Bound::Included(key)))
                .next_back()
                .expect("routing contains the empty separator")
                .1
        };
        let page_key = (tree, page);

        if !inner.cache.contains_key(&page_key) {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            // Resolve through the *adopted* mapping version — the one whose
            // checkpoint this follower has processed — never the live table,
            // which may run ahead of replay. A page the mapping does not
            // know is brand new (paper's page Q): it is built purely from
            // parked records.
            let tag = PageTag {
                tree: tree as u32,
                page: page as u32,
            }
            .encode();
            let entries = match self.fetch_base_page(&inner.adopted, tag) {
                Ok(entries) => entries,
                Err(e) => {
                    // Any verification or decode failure follows the same
                    // eviction path as a torn image during replay: drop
                    // whatever the cache holds for this page so the next
                    // read refetches cold instead of trusting a stale or
                    // half-built entry.
                    inner.cache.remove(&page_key);
                    return Err(e);
                }
            };
            self.evict_if_full(&mut inner);
            inner.cache.insert(
                page_key,
                CachedPage {
                    entries,
                    applied_lsn: Lsn::ZERO,
                    last_access: stamp,
                },
            );
        } else {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }

        // Lazy replay: apply parked records newer than the page has seen.
        let RoInner {
            cache, log_area, ..
        } = &mut *inner;
        let mut apply_error = None;
        {
            let cached = cache.get_mut(&page_key).expect("just ensured");
            cached.last_access = stamp;
            if let Some(records) = log_area.get(&page_key) {
                for (lsn, payload) in records {
                    if *lsn > cached.applied_lsn {
                        match Self::apply_to_entries(&mut cached.entries, payload) {
                            Ok(()) => {
                                cached.applied_lsn = *lsn;
                                self.records_applied.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                apply_error = Some(e);
                                break;
                            }
                        }
                    }
                }
            }
        }
        if let Some(e) = apply_error {
            // Half-applied page: evict it so the next read starts from a
            // clean storage fetch instead of compounding the corruption.
            cache.remove(&page_key);
            return Err(e);
        }

        let cached = cache.get(&page_key).expect("just ensured");
        Ok(cached
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| cached.entries[i].1.clone()))
    }

    /// Ordered scan of `[start, end)` limited to `limit` entries, with lazy
    /// replay on every page touched.
    pub fn scan_range(
        &self,
        tree: u64,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        limit: usize,
    ) -> StorageResult<Entries> {
        // Collect the page ids covering the range, then reuse `get`'s fetch
        // logic page by page via a probe key.
        let pages: Vec<(Vec<u8>, u64)> = {
            let mut inner = self.inner.lock();
            let routing = inner
                .routing
                .entry(tree)
                .or_insert_with(Self::fresh_routing);
            let first_key = start.map(|s| s.to_vec()).unwrap_or_default();
            let mut pages = Vec::new();
            if let Some((sep, &id)) = routing
                .range::<[u8], _>((Bound::Unbounded, Bound::Included(first_key.as_slice())))
                .next_back()
            {
                pages.push((sep.clone(), id));
            }
            for (sep, &id) in
                routing.range::<[u8], _>((Bound::Excluded(first_key.as_slice()), Bound::Unbounded))
            {
                if let Some(e) = end {
                    if sep.as_slice() >= e {
                        break;
                    }
                }
                pages.push((sep.clone(), id));
            }
            pages
        };
        let mut out = Entries::new();
        for (sep, _) in pages {
            // Touch the page via its separator key to fault it in + replay.
            self.get(tree, &sep)?;
            let inner = self.inner.lock();
            let routing = &inner.routing[&tree];
            let page = *routing
                .range::<[u8], _>((Bound::Unbounded, Bound::Included(sep.as_slice())))
                .next_back()
                .unwrap()
                .1;
            if let Some(cached) = inner.cache.get(&(tree, page)) {
                for (k, v) in &cached.entries {
                    if start.is_some_and(|s| k.as_slice() < s) {
                        continue;
                    }
                    if end.is_some_and(|e| k.as_slice() >= e) {
                        break;
                    }
                    out.push((k.clone(), v.clone()));
                    if out.len() == limit {
                        return Ok(out);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Cold fetch of a base page image with bounded verify-retry-failover
    /// (the read half of the end-to-end integrity loop):
    ///
    /// 1. Read + decode through the adopted mapping's address, retrying
    ///    retryable failures (checksum mismatches, transient read faults)
    ///    a bounded number of times on the virtual clock.
    /// 2. On persistent corruption, fall back to the *live* mapping's
    ///    address for the same page — the leader or the scrubber may have
    ///    repaired/re-homed the image since this follower's checkpoint.
    /// 3. Only when both sources fail does the structured error surface
    ///    (quarantined extents fail fast here: not retryable).
    fn fetch_base_page(&self, adopted: &MappingSnapshot, tag: u64) -> StorageResult<Entries> {
        let Some(addr) = adopted.get(tag) else {
            // Brand-new page (paper's page Q): built purely from parked
            // records.
            return Ok(Entries::new());
        };
        let attempt = |addr: PageAddr| -> StorageResult<Entries> {
            let bytes = self.store.read(addr)?;
            // A torn base image is a storage-corruption event, not a
            // process-abort: report it so the caller can retry through a
            // republished mapping or fail over.
            decode_base_page(&bytes)
                .map_err(|_| StorageError::corrupt_record(StorageOp::Read, addr))
        };
        let retry = RetryPolicy::default();
        let clock = self.store.clock();
        let retry_if = |e: &StorageError| {
            let again = e.is_retryable();
            if again {
                self.corrupt_read_retries.fetch_add(1, Ordering::Relaxed);
            }
            again
        };
        match retry.run_when(clock, retry_if, || attempt(addr)) {
            Ok(entries) => Ok(entries),
            Err(e)
                if matches!(
                    e.kind,
                    ErrorKind::ChecksumMismatch
                        | ErrorKind::CorruptRecord
                        | ErrorKind::ExtentQuarantined(_)
                ) =>
            {
                match self.mapping.snapshot().get(tag) {
                    Some(live) if live != addr => {
                        self.corrupt_read_failovers.fetch_add(1, Ordering::Relaxed);
                        retry.run_when(clock, retry_if, || attempt(live))
                    }
                    _ => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    fn evict_if_full(&self, inner: &mut RoInner) {
        if inner.cache.len() < self.config.cache_capacity_pages {
            return;
        }
        if let Some((&victim, _)) = inner.cache.iter().min_by_key(|(_, p)| p.last_access) {
            inner.cache.remove(&victim);
        }
    }

    /// Promotes this follower to a leader on `epoch` (failover, §3.4
    /// extended). The returned [`RwNode`] shares the cluster's store and
    /// mapping table; this follower is defunct afterwards (its WAL reader
    /// tails the dead leader's index).
    ///
    /// The sequence is crash-survivable because every step works from
    /// shared storage only:
    ///
    /// 1. **Drain** the WAL through this node's reader (free catch-up for
    ///    the tail the reader already indexes).
    /// 2. **Seal** the old epoch at the mapping table — from here on every
    ///    zombie publish *and* WAL append is rejected atomically; sealing
    ///    before rebuilding means a zombie cannot extend the log while we
    ///    replay it.
    /// 3. **Rescan** the WAL stream from shared storage
    ///    ([`WalWriter::recover`]) — the dead leader's in-memory LSN index
    ///    died with it — counting the records past our `seen_lsn` as
    ///    promotion replay work.
    /// 4. **Rebuild** the tree via [`recover_tree`] (mapping images + WAL
    ///    tail) and come up as a deferred-flush leader on the new epoch.
    pub fn promote(&self, epoch: u64, config: RwNodeConfig) -> StorageResult<RwNode> {
        // Promotion latency is a clock delta: failover is single-threaded
        // (one replica promotes at a time), so the delta captures the
        // drain + seal + rescan + rebuild cost without concurrent pollution.
        let started = self.store.clock().now();
        // 1. Drain whatever the reader can still see. `seen` is captured
        //    *before* the drain: promotion replay work is measured against
        //    what this replica had applied when the failover began.
        let seen = self.seen_lsn();
        while self.poll()? > 0 {}

        // 2. Fence out the old leader before reading the log tail.
        self.mapping.seal_epoch(epoch)?;

        // 3. Crash-survivable rescan from shared storage.
        let (writer, records) = WalWriter::recover(self.store.clone())?;
        let replayed_past_seen = records.iter().filter(|r| r.lsn > seen).count() as u64;
        self.promotion_replay_records
            .fetch_add(replayed_past_seen, Ordering::Relaxed);
        let writer = Arc::new(
            writer
                .with_retry(config.tree_config.retry)
                .with_fence(self.mapping.fence().clone(), epoch),
        );

        // 4. Rebuild the tree and assemble the successor leader.
        let listener: Arc<dyn TreeEventListener> = WalListener::new(Arc::clone(&writer));
        let mut tree = recover_tree(
            config.tree_id,
            self.store.clone(),
            &self.mapping,
            &records,
            config.tree_config.clone(),
            listener,
        )?;
        tree.set_flush_mode(FlushMode::Deferred);
        let crash = CrashSwitch::new();
        tree.set_crash_switch(crash.clone());
        self.set_serving_stale(false);
        let done = self.store.clock().now();
        self.store
            .stats()
            .record_promotion_latency(done.duration_since(started));
        self.store
            .trace()
            .emit(done.0, TraceKind::Promotion, epoch, replayed_past_seen);
        Ok(RwNode::from_parts(
            Arc::new(tree),
            writer,
            self.mapping.clone(),
            self.store.clone(),
            config,
            crash,
        ))
    }

    /// Drops every cached page (tests and failover simulations).
    pub fn evict_all(&self) {
        self.inner.lock().cache.clear();
    }

    /// Number of records currently parked in the log area.
    pub fn parked_records(&self) -> usize {
        self.inner.lock().log_area.values().map(|v| v.len()).sum()
    }

    /// Number of cached pages.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().cache.len()
    }
}

impl std::fmt::Debug for RoNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoNode")
            .field("cached_pages", &self.cached_pages())
            .field("parked_records", &self.parked_records())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rw::{RwNode, RwNodeConfig};
    use bg3_storage::{StoreBuilder, StoreConfig};

    fn pair(group_commit: usize) -> (RwNode, RoNode) {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let rw = RwNode::new(
            store.clone(),
            RwNodeConfig {
                group_commit_pages: group_commit,
                ..RwNodeConfig::default()
            },
        );
        let ro = RoNode::new(
            store,
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig::default(),
        );
        (rw, ro)
    }

    #[test]
    fn follower_reads_unflushed_writes_after_poll() {
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k1", b"v1").unwrap();
        rw.put(b"k2", b"v2").unwrap();
        ro.poll().unwrap();
        // No checkpoint ran: data exists only in WAL + RW memory, yet the RO
        // serves it — this is the strong-consistency property of Fig. 12.
        assert_eq!(ro.get(1, b"k1").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(ro.get(1, b"k2").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(ro.get(1, b"k3").unwrap(), None);
    }

    #[test]
    fn lazy_replay_applies_only_on_access() {
        let (rw, ro) = pair(usize::MAX);
        for i in 0..10u32 {
            rw.put(format!("key{i}").as_bytes(), b"v").unwrap();
        }
        ro.poll().unwrap();
        assert_eq!(ro.stats().records_applied, 0, "nothing touched yet");
        assert!(ro.parked_records() >= 10);
        ro.get(1, b"key0").unwrap();
        assert!(ro.stats().records_applied > 0, "replayed on access");
    }

    #[test]
    fn checkpoint_discards_covered_records() {
        let (rw, ro) = pair(usize::MAX);
        for i in 0..8u32 {
            rw.put(format!("key{i}").as_bytes(), b"v").unwrap();
        }
        ro.poll().unwrap();
        let parked_before = ro.parked_records();
        rw.checkpoint().unwrap();
        ro.poll().unwrap();
        assert!(ro.parked_records() < parked_before, "log area trimmed");
        // Data still readable: now through mapping + storage.
        assert_eq!(ro.get(1, b"key3").unwrap(), Some(b"v".to_vec()));
        assert!(ro.stats().records_discarded > 0);
    }

    #[test]
    fn cache_miss_resolves_old_mapping_plus_wal() {
        // The Fig. 6/7 scenario: page flushed, then more writes logged but
        // not flushed; an RO cold read must merge storage + parked records.
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"a", b"old").unwrap();
        rw.checkpoint().unwrap();
        rw.put(b"a", b"new").unwrap(); // only in WAL
        rw.put(b"b", b"fresh").unwrap(); // only in WAL
        ro.poll().unwrap();
        ro.evict_all();
        assert_eq!(ro.get(1, b"a").unwrap(), Some(b"new".to_vec()));
        assert_eq!(ro.get(1, b"b").unwrap(), Some(b"fresh".to_vec()));
        assert!(ro.stats().cache_misses >= 1);
    }

    #[test]
    fn splits_replicate_via_routing_and_new_pages() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let mut cfg = RwNodeConfig {
            group_commit_pages: usize::MAX,
            ..RwNodeConfig::default()
        };
        cfg.tree_config = cfg
            .tree_config
            .with_max_page_entries(8)
            .with_consolidate_threshold(4);
        let rw = RwNode::new(store.clone(), cfg);
        let ro = RoNode::new(
            store,
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig::default(),
        );
        for i in 0..64u32 {
            rw.put(format!("key{i:03}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        assert!(rw.tree().page_count() > 1, "leader split");
        ro.poll().unwrap();
        for i in 0..64u32 {
            assert_eq!(
                ro.get(1, format!("key{i:03}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "key {i} readable on follower after split"
            );
        }
    }

    #[test]
    fn deletes_propagate() {
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k", b"v").unwrap();
        rw.delete(b"k").unwrap();
        ro.poll().unwrap();
        assert_eq!(ro.get(1, b"k").unwrap(), None);
    }

    #[test]
    fn cache_eviction_respects_capacity() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let mut cfg = RwNodeConfig {
            group_commit_pages: usize::MAX,
            ..RwNodeConfig::default()
        };
        cfg.tree_config = cfg
            .tree_config
            .with_max_page_entries(4)
            .with_consolidate_threshold(2);
        let rw = RwNode::new(store.clone(), cfg);
        let ro = RoNode::new(
            store,
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig {
                cache_capacity_pages: 2,
                ..RoNodeConfig::default()
            },
        );
        for i in 0..64u32 {
            rw.put(format!("key{i:03}").as_bytes(), b"v").unwrap();
        }
        ro.poll().unwrap();
        for i in 0..64u32 {
            ro.get(1, format!("key{i:03}").as_bytes()).unwrap();
        }
        assert!(ro.cached_pages() <= 2, "capacity enforced");
        // Reads remain correct despite evictions.
        for i in (0..64u32).step_by(9) {
            assert_eq!(
                ro.get(1, format!("key{i:03}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
    }

    #[test]
    fn scan_range_on_follower_merges_replayed_pages() {
        let (rw, ro) = pair(usize::MAX);
        for i in 0..30u32 {
            rw.put(format!("key{i:03}").as_bytes(), format!("{i}").as_bytes())
                .unwrap();
        }
        rw.checkpoint().unwrap();
        for i in 30..40u32 {
            rw.put(format!("key{i:03}").as_bytes(), format!("{i}").as_bytes())
                .unwrap();
        }
        ro.poll().unwrap();
        let hits = ro
            .scan_range(1, Some(b"key010"), Some(b"key035"), usize::MAX)
            .unwrap();
        assert_eq!(hits.len(), 25);
        assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
        let limited = ro.scan_range(1, None, None, 7).unwrap();
        assert_eq!(limited.len(), 7);
    }

    #[test]
    fn session_tokens_give_read_your_writes() {
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k", b"v1").unwrap();
        let token = rw.last_lsn();
        // Fresh follower has seen nothing yet.
        assert!(ro.seen_lsn() < token);
        // ensure_seen catches it up and the write is visible.
        assert!(ro.ensure_seen(token).unwrap());
        assert_eq!(ro.get(1, b"k").unwrap(), Some(b"v1".to_vec()));
        // A token from the future cannot be served: the wait times out on
        // the virtual clock instead of spinning forever.
        let err = ro.ensure_seen(bg3_wal::Lsn(token.0 + 10)).unwrap_err();
        assert!(err.is_timeout(), "got {err}");
    }

    #[test]
    fn ensure_seen_gives_up_after_the_virtual_deadline() {
        let store = StoreBuilder::from_config(StoreConfig::counting()).build();
        let rw = RwNode::new(store.clone(), RwNodeConfig::default());
        let ro = RoNode::new(
            store.clone(),
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig {
                ensure_seen_timeout_nanos: 5_000,
                ensure_seen_poll_nanos: 1_000,
                ..RoNodeConfig::default()
            },
        );
        let before = store.clock().now();
        let err = ro.ensure_seen(Lsn(1)).unwrap_err();
        assert!(err.is_timeout());
        let waited = store.clock().now().duration_since(before);
        assert!(
            (5_000..50_000).contains(&waited),
            "bounded wait, got {waited}ns"
        );
        // The leader finally writes; the same token is now served.
        rw.put(b"k", b"v").unwrap();
        assert!(ro.ensure_seen(Lsn(1)).unwrap());
    }

    #[test]
    fn torn_base_image_is_an_error_not_a_panic() {
        use bg3_storage::StreamId;
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k", b"v").unwrap();
        rw.checkpoint().unwrap();
        ro.poll().unwrap();
        // Corrupt the mapping out from under the follower: point the page's
        // entry at undecodable bytes on the base stream.
        let garbage = rw
            .store()
            .append(StreamId::BASE, b"\xff\xff\xff\xffnot a page", 0, None)
            .unwrap();
        let tag = bg3_bwtree::PageTag { tree: 1, page: 1 }.encode();
        rw.mapping().publish([(tag, Some(garbage))]);
        // A checkpoint with nothing dirty names the (corrupted) live
        // version; the follower adopts it on poll.
        rw.checkpoint().unwrap();
        ro.poll().unwrap();
        ro.evict_all();
        let err = ro.get(1, b"k").unwrap_err();
        assert!(
            matches!(err.kind, bg3_storage::ErrorKind::CorruptRecord),
            "structured corruption error, got {err}"
        );
        // The node survives: repair the mapping and the read succeeds.
        rw.checkpoint().unwrap();
        rw.put(b"k2", b"v2").unwrap();
        rw.checkpoint().unwrap();
        ro.poll().unwrap();
        assert_eq!(ro.get(1, b"k2").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn corrupt_adopted_image_fails_over_to_the_live_mapping() {
        use bg3_storage::StreamId;
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k", b"v").unwrap();
        rw.checkpoint().unwrap();
        ro.poll().unwrap();
        ro.evict_all();
        let tag = bg3_bwtree::PageTag { tree: 1, page: 1 }.encode();
        let adopted = rw.mapping().snapshot().get(tag).expect("page flushed");
        // Silent rot lands on the checkpointed image...
        rw.store().corrupt_record_bit(adopted, 13).unwrap();
        // ...but the leader (or scrubber) has since re-homed a clean copy
        // and published it. The follower's adopted snapshot still points
        // at the rotted address.
        let clean = bg3_bwtree::encode_base_page(&[(b"k".to_vec(), b"v".to_vec())]);
        let repaired = rw
            .store()
            .append(StreamId::BASE, &clean, tag, None)
            .unwrap();
        rw.mapping().publish([(tag, Some(repaired))]);
        assert_eq!(
            ro.get(1, b"k").unwrap(),
            Some(b"v".to_vec()),
            "read served through the live-mapping fallback"
        );
        let stats = ro.stats();
        assert!(stats.corrupt_read_retries > 0, "bounded retry ran first");
        assert_eq!(stats.corrupt_read_failovers, 1);
    }

    #[test]
    fn persistent_rot_without_an_alternative_is_a_structured_error() {
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k", b"v").unwrap();
        rw.checkpoint().unwrap();
        ro.poll().unwrap();
        ro.evict_all();
        let tag = bg3_bwtree::PageTag { tree: 1, page: 1 }.encode();
        let adopted = rw.mapping().snapshot().get(tag).expect("page flushed");
        rw.store().corrupt_record_bit(adopted, 5).unwrap();
        // Live mapping still names the same rotted address: nothing to
        // fail over to, so the checksum error surfaces (no panic, no
        // garbage bytes).
        let err = ro.get(1, b"k").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::ChecksumMismatch), "got {err}");
        assert!(ro.stats().corrupt_read_retries > 0);
        assert_eq!(ro.stats().corrupt_read_failovers, 0);
    }

    #[test]
    fn stale_flag_counts_reads_served_during_an_outage() {
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k", b"v").unwrap();
        ro.poll().unwrap();
        assert_eq!(ro.stats().stale_reads, 0);
        ro.set_serving_stale(true);
        assert!(ro.is_serving_stale());
        assert_eq!(ro.get(1, b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(ro.get(1, b"missing").unwrap(), None);
        assert_eq!(ro.stats().stale_reads, 2);
        ro.set_serving_stale(false);
        ro.get(1, b"k").unwrap();
        assert_eq!(ro.stats().stale_reads, 2, "flag cleared");
    }

    #[test]
    fn promote_turns_a_follower_into_a_working_leader() {
        let (rw, ro) = pair(usize::MAX);
        for i in 0..20u32 {
            rw.put(format!("key{i:02}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        rw.checkpoint().unwrap();
        // Writes past the checkpoint AND past the follower's last poll:
        // promotion must pick them up from the shared log.
        ro.poll().unwrap();
        rw.put(b"tail1", b"t1").unwrap();
        rw.put(b"tail2", b"t2").unwrap();

        let new_leader = ro.promote(2, RwNodeConfig::default()).unwrap();
        assert_eq!(new_leader.epoch(), 2);
        assert!(
            ro.stats().promotion_replay_records >= 2,
            "replayed the tail"
        );
        for i in 0..20u32 {
            assert_eq!(
                new_leader.get(format!("key{i:02}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "acked write {i} survives promotion"
            );
        }
        assert_eq!(new_leader.get(b"tail1").unwrap(), Some(b"t1".to_vec()));
        assert_eq!(new_leader.get(b"tail2").unwrap(), Some(b"t2".to_vec()));

        // The old leader is now a zombie on a sealed epoch.
        assert!(rw.put(b"zombie", b"w").unwrap_err().is_fenced());
        assert!(rw.checkpoint().unwrap_err().is_fenced());

        // The new leader writes and checkpoints on the new epoch, and a
        // fresh follower attached to it sees everything.
        new_leader.put(b"after", b"failover").unwrap();
        new_leader.checkpoint().unwrap();
        let ro2 = RoNode::new(
            new_leader.store().clone(),
            new_leader.mapping().clone(),
            new_leader.open_wal_reader(),
            RoNodeConfig::default(),
        );
        ro2.poll().unwrap();
        assert_eq!(ro2.get(1, b"after").unwrap(), Some(b"failover".to_vec()));
        assert_eq!(ro2.get(1, b"tail2").unwrap(), Some(b"t2".to_vec()));
        assert_eq!(ro2.stats().fenced_records_skipped, 0, "no zombie records");
    }

    #[test]
    fn promote_rejects_a_stale_epoch() {
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k", b"v").unwrap();
        rw.mapping().seal_epoch(5).unwrap();
        let err = ro.promote(5, RwNodeConfig::default()).unwrap_err();
        assert!(err.is_fenced(), "equal epoch cannot seal again");
        assert!(ro.promote(6, RwNodeConfig::default()).is_ok());
    }

    #[test]
    fn sync_latency_is_recorded() {
        let store = StoreBuilder::from_config(bg3_storage::StoreConfig::default()).build(); // real latency
        let rw = RwNode::new(store.clone(), RwNodeConfig::default());
        let ro = RoNode::new(
            store,
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig::default(),
        );
        rw.put(b"k", b"v").unwrap();
        ro.poll().unwrap();
        assert_eq!(ro.sync_latency().count(), 1);
        assert!(ro.sync_latency().mean_nanos() > 0, "simulated delay seen");
    }
}
