//! The read-only (follower) node.

use crate::latency::LatencyRecorder;
use bg3_bwtree::tree::FIRST_LEAF;
use bg3_bwtree::{decode_base_page, Entries, PageTag};
use bg3_storage::{AppendOnlyStore, SharedMappingTable, StorageResult};
use bg3_wal::{Lsn, WalPayload, WalReader};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

/// RO-node configuration.
#[derive(Debug, Clone)]
pub struct RoNodeConfig {
    /// Maximum pages cached in memory; beyond it, the least recently used
    /// page is evicted (the paper: "the cache on RO node dynamically evicts
    /// pages from DRAM based on the read requests").
    pub cache_capacity_pages: usize,
}

impl Default for RoNodeConfig {
    fn default() -> Self {
        RoNodeConfig {
            cache_capacity_pages: 4096,
        }
    }
}

struct CachedPage {
    entries: Entries,
    /// Highest parked-record LSN already applied to `entries`.
    applied_lsn: Lsn,
    last_access: u64,
}

type PageKey = (u64, u64); // (tree, page)

struct RoInner {
    /// Per-tree routing table, rebuilt from WAL `Split` records.
    routing: HashMap<u64, BTreeMap<Vec<u8>, u64>>,
    cache: HashMap<PageKey, CachedPage>,
    /// The page-indexed log area (§3.4 "I/O Efficiency"): parked records
    /// waiting for lazy replay, in LSN order per page.
    log_area: HashMap<PageKey, Vec<(Lsn, WalPayload)>>,
}

/// Counters describing an RO node's behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoStatsSnapshot {
    /// Point lookups served.
    pub reads: u64,
    /// Lookups served from cached pages.
    pub cache_hits: u64,
    /// Lookups that fetched a page image from shared storage.
    pub cache_misses: u64,
    /// WAL records parked into the log area.
    pub records_parked: u64,
    /// Parked records applied to cached pages (lazy replay).
    pub records_applied: u64,
    /// Parked records discarded after a checkpoint covered them.
    pub records_discarded: u64,
}

/// A follower: tails the WAL, parks page records for lazy replay, serves
/// reads from its cache + the published mapping version (Fig. 7, right).
pub struct RoNode {
    store: AppendOnlyStore,
    mapping: SharedMappingTable,
    reader: Mutex<WalReader>,
    inner: Mutex<RoInner>,
    latency: LatencyRecorder,
    config: RoNodeConfig,
    access_clock: AtomicU64,
    reads: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    records_parked: AtomicU64,
    records_applied: AtomicU64,
    records_discarded: AtomicU64,
}

impl RoNode {
    /// Attaches a follower to the shared store, the leader's mapping table,
    /// and a WAL reader (from [`crate::RwNode::open_wal_reader`]).
    pub fn new(
        store: AppendOnlyStore,
        mapping: SharedMappingTable,
        reader: WalReader,
        config: RoNodeConfig,
    ) -> Self {
        RoNode {
            store,
            mapping,
            reader: Mutex::new(reader),
            inner: Mutex::new(RoInner {
                routing: HashMap::new(),
                cache: HashMap::new(),
                log_area: HashMap::new(),
            }),
            latency: LatencyRecorder::default(),
            config,
            access_clock: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            records_parked: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            records_discarded: AtomicU64::new(0),
        }
    }

    /// Leader-to-follower propagation latency (record timestamp → poll),
    /// on the simulated clock.
    pub fn sync_latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RoStatsSnapshot {
        RoStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            records_parked: self.records_parked.load(Ordering::Relaxed),
            records_applied: self.records_applied.load(Ordering::Relaxed),
            records_discarded: self.records_discarded.load(Ordering::Relaxed),
        }
    }

    /// The highest LSN this follower has consumed from the WAL. Use with
    /// [`RoNode::ensure_seen`] for read-your-writes session consistency:
    /// the leader hands the client `rw.last_lsn()` as a session token, and
    /// any follower can serve the client once it has caught up to it.
    pub fn seen_lsn(&self) -> Lsn {
        self.reader.lock().position()
    }

    /// Catches up to at least `lsn` (polling the WAL if behind). Returns
    /// `true` when the follower now covers the token; `false` means the
    /// leader has not durably logged that LSN yet, so serving the session
    /// here would violate read-your-writes.
    pub fn ensure_seen(&self, lsn: Lsn) -> StorageResult<bool> {
        if self.seen_lsn() >= lsn {
            return Ok(true);
        }
        self.poll()?;
        Ok(self.seen_lsn() >= lsn)
    }

    /// Tails the WAL: parks page records, applies splits to the routing
    /// table eagerly, and processes checkpoints. Returns the number of new
    /// records consumed.
    pub fn poll(&self) -> StorageResult<usize> {
        let records = self.reader.lock().fetch_new()?;
        if records.is_empty() {
            return Ok(0);
        }
        let now = self.store.clock().now();
        let mut inner = self.inner.lock();
        let count = records.len();
        for record in records {
            self.latency.record(now.duration_since(record.timestamp));
            match &record.payload {
                WalPayload::CheckpointComplete { upto } => {
                    self.handle_checkpoint(&mut inner, Lsn(*upto));
                }
                WalPayload::Split {
                    right_page,
                    separator,
                } => {
                    // Routing must be current before any read routes a key;
                    // the content truncation of the left page stays lazy.
                    inner
                        .routing
                        .entry(record.tree)
                        .or_insert_with(Self::fresh_routing)
                        .insert(separator.clone(), *right_page);
                    self.park(
                        &mut inner,
                        record.tree,
                        record.page,
                        record.lsn,
                        record.payload,
                    );
                }
                _ => {
                    self.park(
                        &mut inner,
                        record.tree,
                        record.page,
                        record.lsn,
                        record.payload,
                    );
                }
            }
        }
        Ok(count)
    }

    fn fresh_routing() -> BTreeMap<Vec<u8>, u64> {
        let mut routing = BTreeMap::new();
        routing.insert(Vec::new(), FIRST_LEAF as u64);
        routing
    }

    fn park(&self, inner: &mut RoInner, tree: u64, page: u64, lsn: Lsn, payload: WalPayload) {
        inner
            .log_area
            .entry((tree, page))
            .or_default()
            .push((lsn, payload));
        self.records_parked.fetch_add(1, Ordering::Relaxed);
    }

    /// Checkpoint: shared storage now reflects LSNs `<= upto`. Apply covered
    /// records to any *cached* pages (so dropping them loses nothing), then
    /// discard them; uncached pages will be re-fetched current from storage.
    fn handle_checkpoint(&self, inner: &mut RoInner, upto: Lsn) {
        let RoInner {
            cache, log_area, ..
        } = inner;
        log_area.retain(|page_key, records| {
            let covered = records.iter().filter(|(lsn, _)| *lsn <= upto).count();
            if covered > 0 {
                if let Some(cached) = cache.get_mut(page_key) {
                    for (lsn, payload) in records.iter().take(covered) {
                        if *lsn > cached.applied_lsn {
                            Self::apply_to_entries(&mut cached.entries, payload);
                            cached.applied_lsn = *lsn;
                            self.records_applied.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                records.drain(..covered);
                self.records_discarded
                    .fetch_add(covered as u64, Ordering::Relaxed);
            }
            !records.is_empty()
        });
    }

    fn apply_to_entries(entries: &mut Entries, payload: &WalPayload) {
        match payload {
            WalPayload::Upsert { key, value } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => entries[i].1 = value.clone(),
                    Err(i) => entries.insert(i, (key.clone(), value.clone())),
                }
            }
            WalPayload::Delete { key } => {
                if let Ok(i) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    entries.remove(i);
                }
            }
            WalPayload::PageImage { image } | WalPayload::NewPage { image } => {
                *entries = decode_base_page(image).expect("leader wrote a valid image");
            }
            WalPayload::Split { separator, .. } => {
                // This page is the left half: keys >= separator moved away.
                entries.retain(|(k, _)| k.as_slice() < separator.as_slice());
            }
            // Not page-scoped: never parked against a page.
            WalPayload::CheckpointComplete { .. } | WalPayload::ForestSplitOut { .. } => {}
        }
    }

    /// Point lookup with lazy replay (Fig. 7 steps (4)–(6)).
    pub fn get(&self, tree: u64, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let stamp = self.access_clock.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let page = {
            let routing = inner
                .routing
                .entry(tree)
                .or_insert_with(Self::fresh_routing);
            *routing
                .range::<[u8], _>((Bound::Unbounded, Bound::Included(key)))
                .next_back()
                .expect("routing contains the empty separator")
                .1
        };
        let page_key = (tree, page);

        if !inner.cache.contains_key(&page_key) {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            // Resolve through the *published* mapping version. A page the
            // mapping does not know is brand new (paper's page Q): it is
            // built purely from parked records.
            let tag = PageTag {
                tree: tree as u32,
                page: page as u32,
            }
            .encode();
            let entries = match self.mapping.get(tag) {
                Some(addr) => {
                    let bytes = self.store.read(addr)?;
                    decode_base_page(&bytes).expect("valid base image on the store")
                }
                None => Entries::new(),
            };
            self.evict_if_full(&mut inner);
            inner.cache.insert(
                page_key,
                CachedPage {
                    entries,
                    applied_lsn: Lsn::ZERO,
                    last_access: stamp,
                },
            );
        } else {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }

        // Lazy replay: apply parked records newer than the page has seen.
        let RoInner {
            cache, log_area, ..
        } = &mut *inner;
        let cached = cache.get_mut(&page_key).expect("just ensured");
        cached.last_access = stamp;
        if let Some(records) = log_area.get(&page_key) {
            for (lsn, payload) in records {
                if *lsn > cached.applied_lsn {
                    Self::apply_to_entries(&mut cached.entries, payload);
                    cached.applied_lsn = *lsn;
                    self.records_applied.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        Ok(cached
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| cached.entries[i].1.clone()))
    }

    /// Ordered scan of `[start, end)` limited to `limit` entries, with lazy
    /// replay on every page touched.
    pub fn scan_range(
        &self,
        tree: u64,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        limit: usize,
    ) -> StorageResult<Entries> {
        // Collect the page ids covering the range, then reuse `get`'s fetch
        // logic page by page via a probe key.
        let pages: Vec<(Vec<u8>, u64)> = {
            let mut inner = self.inner.lock();
            let routing = inner
                .routing
                .entry(tree)
                .or_insert_with(Self::fresh_routing);
            let first_key = start.map(|s| s.to_vec()).unwrap_or_default();
            let mut pages = Vec::new();
            if let Some((sep, &id)) = routing
                .range::<[u8], _>((Bound::Unbounded, Bound::Included(first_key.as_slice())))
                .next_back()
            {
                pages.push((sep.clone(), id));
            }
            for (sep, &id) in
                routing.range::<[u8], _>((Bound::Excluded(first_key.as_slice()), Bound::Unbounded))
            {
                if let Some(e) = end {
                    if sep.as_slice() >= e {
                        break;
                    }
                }
                pages.push((sep.clone(), id));
            }
            pages
        };
        let mut out = Entries::new();
        for (sep, _) in pages {
            // Touch the page via its separator key to fault it in + replay.
            self.get(tree, &sep)?;
            let inner = self.inner.lock();
            let routing = &inner.routing[&tree];
            let page = *routing
                .range::<[u8], _>((Bound::Unbounded, Bound::Included(sep.as_slice())))
                .next_back()
                .unwrap()
                .1;
            if let Some(cached) = inner.cache.get(&(tree, page)) {
                for (k, v) in &cached.entries {
                    if start.is_some_and(|s| k.as_slice() < s) {
                        continue;
                    }
                    if end.is_some_and(|e| k.as_slice() >= e) {
                        break;
                    }
                    out.push((k.clone(), v.clone()));
                    if out.len() == limit {
                        return Ok(out);
                    }
                }
            }
        }
        Ok(out)
    }

    fn evict_if_full(&self, inner: &mut RoInner) {
        if inner.cache.len() < self.config.cache_capacity_pages {
            return;
        }
        if let Some((&victim, _)) = inner.cache.iter().min_by_key(|(_, p)| p.last_access) {
            inner.cache.remove(&victim);
        }
    }

    /// Drops every cached page (tests and failover simulations).
    pub fn evict_all(&self) {
        self.inner.lock().cache.clear();
    }

    /// Number of records currently parked in the log area.
    pub fn parked_records(&self) -> usize {
        self.inner.lock().log_area.values().map(|v| v.len()).sum()
    }

    /// Number of cached pages.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().cache.len()
    }
}

impl std::fmt::Debug for RoNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoNode")
            .field("cached_pages", &self.cached_pages())
            .field("parked_records", &self.parked_records())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rw::{RwNode, RwNodeConfig};
    use bg3_storage::StoreConfig;

    fn pair(group_commit: usize) -> (RwNode, RoNode) {
        let store = AppendOnlyStore::new(StoreConfig::counting());
        let rw = RwNode::new(
            store.clone(),
            RwNodeConfig {
                group_commit_pages: group_commit,
                ..RwNodeConfig::default()
            },
        );
        let ro = RoNode::new(
            store,
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig::default(),
        );
        (rw, ro)
    }

    #[test]
    fn follower_reads_unflushed_writes_after_poll() {
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k1", b"v1").unwrap();
        rw.put(b"k2", b"v2").unwrap();
        ro.poll().unwrap();
        // No checkpoint ran: data exists only in WAL + RW memory, yet the RO
        // serves it — this is the strong-consistency property of Fig. 12.
        assert_eq!(ro.get(1, b"k1").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(ro.get(1, b"k2").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(ro.get(1, b"k3").unwrap(), None);
    }

    #[test]
    fn lazy_replay_applies_only_on_access() {
        let (rw, ro) = pair(usize::MAX);
        for i in 0..10u32 {
            rw.put(format!("key{i}").as_bytes(), b"v").unwrap();
        }
        ro.poll().unwrap();
        assert_eq!(ro.stats().records_applied, 0, "nothing touched yet");
        assert!(ro.parked_records() >= 10);
        ro.get(1, b"key0").unwrap();
        assert!(ro.stats().records_applied > 0, "replayed on access");
    }

    #[test]
    fn checkpoint_discards_covered_records() {
        let (rw, ro) = pair(usize::MAX);
        for i in 0..8u32 {
            rw.put(format!("key{i}").as_bytes(), b"v").unwrap();
        }
        ro.poll().unwrap();
        let parked_before = ro.parked_records();
        rw.checkpoint().unwrap();
        ro.poll().unwrap();
        assert!(ro.parked_records() < parked_before, "log area trimmed");
        // Data still readable: now through mapping + storage.
        assert_eq!(ro.get(1, b"key3").unwrap(), Some(b"v".to_vec()));
        assert!(ro.stats().records_discarded > 0);
    }

    #[test]
    fn cache_miss_resolves_old_mapping_plus_wal() {
        // The Fig. 6/7 scenario: page flushed, then more writes logged but
        // not flushed; an RO cold read must merge storage + parked records.
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"a", b"old").unwrap();
        rw.checkpoint().unwrap();
        rw.put(b"a", b"new").unwrap(); // only in WAL
        rw.put(b"b", b"fresh").unwrap(); // only in WAL
        ro.poll().unwrap();
        ro.evict_all();
        assert_eq!(ro.get(1, b"a").unwrap(), Some(b"new".to_vec()));
        assert_eq!(ro.get(1, b"b").unwrap(), Some(b"fresh".to_vec()));
        assert!(ro.stats().cache_misses >= 1);
    }

    #[test]
    fn splits_replicate_via_routing_and_new_pages() {
        let store = AppendOnlyStore::new(StoreConfig::counting());
        let mut cfg = RwNodeConfig {
            group_commit_pages: usize::MAX,
            ..RwNodeConfig::default()
        };
        cfg.tree_config = cfg
            .tree_config
            .with_max_page_entries(8)
            .with_consolidate_threshold(4);
        let rw = RwNode::new(store.clone(), cfg);
        let ro = RoNode::new(
            store,
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig::default(),
        );
        for i in 0..64u32 {
            rw.put(format!("key{i:03}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        assert!(rw.tree().page_count() > 1, "leader split");
        ro.poll().unwrap();
        for i in 0..64u32 {
            assert_eq!(
                ro.get(1, format!("key{i:03}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "key {i} readable on follower after split"
            );
        }
    }

    #[test]
    fn deletes_propagate() {
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k", b"v").unwrap();
        rw.delete(b"k").unwrap();
        ro.poll().unwrap();
        assert_eq!(ro.get(1, b"k").unwrap(), None);
    }

    #[test]
    fn cache_eviction_respects_capacity() {
        let store = AppendOnlyStore::new(StoreConfig::counting());
        let mut cfg = RwNodeConfig {
            group_commit_pages: usize::MAX,
            ..RwNodeConfig::default()
        };
        cfg.tree_config = cfg
            .tree_config
            .with_max_page_entries(4)
            .with_consolidate_threshold(2);
        let rw = RwNode::new(store.clone(), cfg);
        let ro = RoNode::new(
            store,
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig {
                cache_capacity_pages: 2,
            },
        );
        for i in 0..64u32 {
            rw.put(format!("key{i:03}").as_bytes(), b"v").unwrap();
        }
        ro.poll().unwrap();
        for i in 0..64u32 {
            ro.get(1, format!("key{i:03}").as_bytes()).unwrap();
        }
        assert!(ro.cached_pages() <= 2, "capacity enforced");
        // Reads remain correct despite evictions.
        for i in (0..64u32).step_by(9) {
            assert_eq!(
                ro.get(1, format!("key{i:03}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
    }

    #[test]
    fn scan_range_on_follower_merges_replayed_pages() {
        let (rw, ro) = pair(usize::MAX);
        for i in 0..30u32 {
            rw.put(format!("key{i:03}").as_bytes(), format!("{i}").as_bytes())
                .unwrap();
        }
        rw.checkpoint().unwrap();
        for i in 30..40u32 {
            rw.put(format!("key{i:03}").as_bytes(), format!("{i}").as_bytes())
                .unwrap();
        }
        ro.poll().unwrap();
        let hits = ro
            .scan_range(1, Some(b"key010"), Some(b"key035"), usize::MAX)
            .unwrap();
        assert_eq!(hits.len(), 25);
        assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
        let limited = ro.scan_range(1, None, None, 7).unwrap();
        assert_eq!(limited.len(), 7);
    }

    #[test]
    fn session_tokens_give_read_your_writes() {
        let (rw, ro) = pair(usize::MAX);
        rw.put(b"k", b"v1").unwrap();
        let token = rw.last_lsn();
        // Fresh follower has seen nothing yet.
        assert!(ro.seen_lsn() < token);
        // ensure_seen catches it up and the write is visible.
        assert!(ro.ensure_seen(token).unwrap());
        assert_eq!(ro.get(1, b"k").unwrap(), Some(b"v1".to_vec()));
        // A token from the future cannot be served.
        assert!(!ro.ensure_seen(bg3_wal::Lsn(token.0 + 10)).unwrap());
    }

    #[test]
    fn sync_latency_is_recorded() {
        let store = AppendOnlyStore::new(bg3_storage::StoreConfig::default()); // real latency
        let rw = RwNode::new(store.clone(), RwNodeConfig::default());
        let ro = RoNode::new(
            store,
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig::default(),
        );
        rw.put(b"k", b"v").unwrap();
        ro.poll().unwrap();
        assert_eq!(ro.sync_latency().count(), 1);
        assert!(ro.sync_latency().mean_nanos() > 0, "simulated delay seen");
    }
}
