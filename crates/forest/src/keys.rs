//! Composite key encoding for the INIT tree.
//!
//! INIT-tree keys are `u16 group_len (BE) | group | item`. The big-endian
//! length prefix keeps all keys of one group contiguous (so a group scan is
//! a prefix scan) while remaining unambiguous for variable-length groups.
//! Dedicated trees store the bare `item` — dropping the group prefix is the
//! key-truncation space saving of §3.2.1.

/// Maximum supported group-id length.
pub const MAX_GROUP_LEN: usize = u16::MAX as usize;

/// Encodes `group ++ item` for the INIT tree.
///
/// # Panics
/// Panics if `group` exceeds [`MAX_GROUP_LEN`] bytes.
pub fn composite_key(group: &[u8], item: &[u8]) -> Vec<u8> {
    assert!(group.len() <= MAX_GROUP_LEN, "group id too long");
    let mut key = Vec::with_capacity(2 + group.len() + item.len());
    key.extend_from_slice(&(group.len() as u16).to_be_bytes());
    key.extend_from_slice(group);
    key.extend_from_slice(item);
    key
}

/// The prefix shared by every key of `group` — scan with this to enumerate
/// the group inside the INIT tree.
pub fn group_prefix(group: &[u8]) -> Vec<u8> {
    composite_key(group, &[])
}

/// Splits a composite key back into `(group, item)`. Returns `None` for
/// malformed keys.
pub fn decode_composite(key: &[u8]) -> Option<(&[u8], &[u8])> {
    if key.len() < 2 {
        return None;
    }
    let group_len = u16::from_be_bytes([key[0], key[1]]) as usize;
    if key.len() < 2 + group_len {
        return None;
    }
    Some((&key[2..2 + group_len], &key[2 + group_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let key = composite_key(b"user:42", b"video:7");
        let (g, i) = decode_composite(&key).unwrap();
        assert_eq!(g, b"user:42");
        assert_eq!(i, b"video:7");
    }

    #[test]
    fn empty_item_and_empty_group() {
        let k1 = composite_key(b"u", b"");
        assert_eq!(decode_composite(&k1), Some((&b"u"[..], &b""[..])));
        let k2 = composite_key(b"", b"x");
        assert_eq!(decode_composite(&k2), Some((&b""[..], &b"x"[..])));
    }

    #[test]
    fn groups_do_not_interleave() {
        // "a" items must never sort between "ab" items: the length prefix
        // separates them.
        let a_hi = composite_key(b"a", &[0xFF; 4]);
        let ab_lo = composite_key(b"ab", &[0x00]);
        assert!(a_hi < ab_lo, "group 'a' sorts wholly before group 'ab'");
    }

    #[test]
    fn prefix_matches_only_its_group() {
        let p = group_prefix(b"user1");
        assert!(composite_key(b"user1", b"v").starts_with(&p));
        assert!(!composite_key(b"user10", b"v").starts_with(&p));
        assert!(!composite_key(b"user2", b"v").starts_with(&p));
    }

    #[test]
    fn malformed_keys_decode_to_none() {
        assert_eq!(decode_composite(&[]), None);
        assert_eq!(decode_composite(&[0]), None);
        // Declared group length longer than the buffer.
        assert_eq!(decode_composite(&[0, 10, b'x']), None);
    }
}
