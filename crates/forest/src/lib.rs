//! # bg3-forest
//!
//! The *Space-Optimized Bw-tree Forest* (§3.2.1 of the BG3 paper).
//!
//! Storing every user's adjacency list in one big Bw-tree makes concurrent
//! writers collide on the same leaves (Observation 1); giving every user a
//! private tree wastes space on page holes and per-tree bookkeeping for the
//! long tail of inactive users (Observation 3). The forest takes the middle
//! road:
//!
//! * All groups (users) start in a shared **INIT tree**, keyed by
//!   `group ++ item` composite keys.
//! * When a group's edge count crosses `split_out_threshold`, its edges are
//!   carved out into a **dedicated tree** keyed by `item` alone — the group
//!   prefix is dropped from every key, the paper's space saving.
//! * When the INIT tree itself outgrows `init_tree_max_entries`, the largest
//!   resident group is evicted into a dedicated tree to keep INIT queries
//!   fast.
//!
//! A hash directory maps group → dedicated tree (the hash table on the right
//! of the paper's Fig. 3).

pub mod forest;
pub mod keys;

pub use bg3_bwtree::{BatchVisitor, ScanOutcome};
pub use forest::{BwTreeForest, ForestConfig, ForestStatsSnapshot, INIT_TREE_ID};
pub use keys::{composite_key, decode_composite, group_prefix};
