//! The forest itself.

use crate::keys::{composite_key, decode_composite, group_prefix};
use bg3_bwtree::{
    BatchVisitor, BwTree, BwTreeConfig, Entries, ScanOutcome, TreeEvent, TreeEventListener,
};
use bg3_storage::{AppendOnlyStore, CrashPoint, CrashSwitch, StorageResult, TraceKind};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Tree id reserved for the INIT tree in every forest.
pub const INIT_TREE_ID: u32 = 0;

/// Forest tuning knobs.
#[derive(Clone)]
pub struct ForestConfig {
    /// A group is split out into a dedicated tree once its edge count in the
    /// INIT tree crosses this threshold. §4.3.2 sweeps this to control the
    /// total number of trees. `usize::MAX` disables split-out (single-tree
    /// forest).
    pub split_out_threshold: usize,
    /// When the INIT tree holds more total entries than this, the group with
    /// the most edges is evicted into a dedicated tree.
    pub init_tree_max_entries: usize,
    /// Lock stripes for the directory and per-group counters. Groups are
    /// hash-partitioned across stripes, so writers on distinct vertex
    /// groups contend only when they collide on a stripe. Clamped to at
    /// least 1.
    pub stripes: usize,
    /// Configuration applied to every tree in the forest.
    pub tree_config: BwTreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            split_out_threshold: 64,
            init_tree_max_entries: 1 << 20,
            stripes: 16,
            tree_config: BwTreeConfig::default(),
        }
    }
}

impl ForestConfig {
    /// Builder-style setter for the split-out threshold.
    pub fn with_split_out_threshold(mut self, threshold: usize) -> Self {
        self.split_out_threshold = threshold;
        self
    }

    /// Builder-style setter for the INIT-tree size limit.
    pub fn with_init_tree_max_entries(mut self, max: usize) -> Self {
        self.init_tree_max_entries = max;
        self
    }

    /// Builder-style setter for the lock-stripe count.
    pub fn with_stripes(mut self, stripes: usize) -> Self {
        self.stripes = stripes;
        self
    }

    /// Builder-style setter for the per-tree config.
    pub fn with_tree_config(mut self, cfg: BwTreeConfig) -> Self {
        self.tree_config = cfg;
        self
    }
}

/// Point-in-time statistics of a forest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForestStatsSnapshot {
    /// Dedicated trees created so far (excludes INIT).
    pub dedicated_trees: u64,
    /// Groups split out due to their own edge count.
    pub threshold_split_outs: u64,
    /// Groups evicted because the INIT tree grew too large.
    pub init_evictions: u64,
}

/// One lock stripe: the slice of the group directory and of the INIT-tree
/// edge counters whose groups hash here. One `RwLock` covers both maps so
/// a group's routing decision and its counter always agree.
#[derive(Default)]
struct Stripe {
    /// group → dedicated tree.
    directory: HashMap<Vec<u8>, Arc<BwTree>>,
    /// Edge counts of groups still resident in the INIT tree.
    init_counts: HashMap<Vec<u8>, usize>,
}

/// The Space-Optimized Bw-tree Forest (Fig. 3, right side).
///
/// Directory state is lock-striped: groups are hash-partitioned across
/// `config.stripes` independent `RwLock`s, so `put`/`get`/`scan_group` on
/// distinct vertex groups proceed without contending on a global lock.
/// Cross-stripe aggregates (`total_entries`, `all_trees`, …) snapshot each
/// stripe's `Arc<BwTree>` list briefly and do the summing outside any
/// lock.
pub struct BwTreeForest {
    store: AppendOnlyStore,
    config: ForestConfig,
    listener: Option<Arc<dyn TreeEventListener>>,
    init: Arc<BwTree>,
    /// Chaos hook: [`CrashPoint::MidSplit`] fires inside `split_out` after
    /// the copy but before the split commits. Disarmed by default.
    crash: CrashSwitch,
    stripes: Vec<RwLock<Stripe>>,
    next_tree_id: AtomicU32,
    threshold_split_outs: AtomicU64,
    init_evictions: AtomicU64,
}

impl BwTreeForest {
    /// Creates an empty forest.
    pub fn new(store: AppendOnlyStore, config: ForestConfig) -> Self {
        Self::build(store, config, None)
    }

    /// Creates an empty forest whose trees all report to `listener`.
    pub fn with_listener(
        store: AppendOnlyStore,
        config: ForestConfig,
        listener: Arc<dyn TreeEventListener>,
    ) -> Self {
        Self::build(store, config, Some(listener))
    }

    fn build(
        store: AppendOnlyStore,
        config: ForestConfig,
        listener: Option<Arc<dyn TreeEventListener>>,
    ) -> Self {
        let crash = CrashSwitch::new();
        let init = Arc::new(Self::make_tree(
            INIT_TREE_ID,
            &store,
            &config.tree_config,
            listener.as_ref(),
            &crash,
        ));
        let stripes = (0..config.stripes.max(1))
            .map(|_| RwLock::new(Stripe::default()))
            .collect();
        BwTreeForest {
            store,
            config,
            listener,
            init,
            crash,
            stripes,
            next_tree_id: AtomicU32::new(INIT_TREE_ID + 1),
            threshold_split_outs: AtomicU64::new(0),
            init_evictions: AtomicU64::new(0),
        }
    }

    /// Reassembles a forest from recovered trees (crash recovery).
    ///
    /// `directory` maps each committed split-out group to its recovered
    /// dedicated tree; `next_tree_id` must exceed every tree id ever
    /// logged — *including* orphans from crashed split-outs — so ids are
    /// never reused. Per-group INIT edge counts are rebuilt by scanning the
    /// recovered INIT tree; the split-out/eviction counters restart at zero
    /// (they count activity since this handle opened).
    pub fn assemble(
        store: AppendOnlyStore,
        config: ForestConfig,
        listener: Option<Arc<dyn TreeEventListener>>,
        mut init: BwTree,
        directory: Vec<(Vec<u8>, BwTree)>,
        next_tree_id: u32,
    ) -> Self {
        let crash = CrashSwitch::new();
        init.set_crash_switch(crash.clone());
        let stripe_count = config.stripes.max(1);
        let mut stripes: Vec<Stripe> = (0..stripe_count).map(|_| Stripe::default()).collect();
        for (group, mut tree) in directory {
            tree.set_crash_switch(crash.clone());
            stripes[Self::stripe_index(&group, stripe_count)]
                .directory
                .insert(group, Arc::new(tree));
        }
        for (composite, _) in init.scan_range(None, None, usize::MAX) {
            if let Some((group, _)) = decode_composite(&composite) {
                *stripes[Self::stripe_index(group, stripe_count)]
                    .init_counts
                    .entry(group.to_vec())
                    .or_insert(0) += 1;
            }
        }
        BwTreeForest {
            store,
            config,
            listener,
            init: Arc::new(init),
            crash,
            stripes: stripes.into_iter().map(RwLock::new).collect(),
            next_tree_id: AtomicU32::new(next_tree_id),
            threshold_split_outs: AtomicU64::new(0),
            init_evictions: AtomicU64::new(0),
        }
    }

    fn make_tree(
        id: u32,
        store: &AppendOnlyStore,
        cfg: &BwTreeConfig,
        listener: Option<&Arc<dyn TreeEventListener>>,
        crash: &CrashSwitch,
    ) -> BwTree {
        let mut tree = match listener {
            Some(l) => BwTree::with_listener(id, store.clone(), cfg.clone(), Arc::clone(l)),
            None => BwTree::new(id, store.clone(), cfg.clone()),
        };
        tree.set_crash_switch(crash.clone());
        tree
    }

    /// The forest's configuration.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }

    /// The crash switch shared by the forest and every tree it creates.
    /// Clones share arming state, so arm through this accessor to kill the
    /// forest at [`CrashPoint::MidSplit`] or its trees at
    /// [`CrashPoint::MidFlush`].
    pub fn crash_switch(&self) -> &CrashSwitch {
        &self.crash
    }

    /// Deterministic group → stripe routing, shared by `build`/`assemble`.
    fn stripe_index(group: &[u8], stripes: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        group.hash(&mut h);
        (h.finish() as usize) % stripes
    }

    /// The stripe owning `group`.
    fn stripe_of(&self, group: &[u8]) -> &RwLock<Stripe> {
        &self.stripes[Self::stripe_index(group, self.stripes.len())]
    }

    /// Snapshot of every dedicated tree, taken stripe by stripe. Callers
    /// aggregate over the returned `Arc`s without holding any stripe lock.
    fn dedicated_trees(&self) -> Vec<Arc<BwTree>> {
        let mut trees = Vec::new();
        for stripe in &self.stripes {
            trees.extend(stripe.read().directory.values().cloned());
        }
        trees
    }

    /// The dedicated tree for `group`, if it has one.
    pub fn dedicated_tree(&self, group: &[u8]) -> Option<Arc<BwTree>> {
        self.stripe_of(group).read().directory.get(group).cloned()
    }

    /// The INIT tree (exposed for inspection and benchmarks).
    pub fn init_tree(&self) -> &Arc<BwTree> {
        &self.init
    }

    /// Inserts or overwrites `(group, item) -> value`.
    pub fn put(&self, group: &[u8], item: &[u8], value: &[u8]) -> StorageResult<()> {
        if let Some(tree) = self.dedicated_tree(group) {
            return tree.put(item, value);
        }
        self.init.put(&composite_key(group, item), value)?;
        let group_count = {
            let mut stripe = self.stripe_of(group).write();
            let c = stripe.init_counts.entry(group.to_vec()).or_insert(0);
            *c += 1;
            *c
        };
        if group_count > self.config.split_out_threshold {
            self.split_out(group, false)?;
        } else if self.init.entry_count() > self.config.init_tree_max_entries {
            // Evict the heaviest group to keep INIT queries fast. Each
            // stripe nominates its local maximum under a read lock; the
            // final pick happens outside any lock.
            let heaviest = self
                .stripes
                .iter()
                .filter_map(|s| {
                    s.read()
                        .init_counts
                        .iter()
                        .max_by_key(|(_, &c)| c)
                        .map(|(g, &c)| (g.clone(), c))
                })
                .max_by_key(|(_, c)| *c)
                .map(|(g, _)| g);
            if let Some(g) = heaviest {
                self.split_out(&g, true)?;
            }
        }
        Ok(())
    }

    /// Moves every `group` edge from the INIT tree into a fresh dedicated
    /// tree with truncated keys (§3.2.1, Fig. 3: Bw-tree (A)).
    fn split_out(&self, group: &[u8], eviction: bool) -> StorageResult<()> {
        // Only the owning stripe is write-locked for the duration of the
        // split: writers on other stripes keep going.
        let mut stripe = self.stripe_of(group).write();
        if stripe.directory.contains_key(group) {
            return Ok(()); // another writer raced us here
        }
        let id = self.next_tree_id.fetch_add(1, Ordering::Relaxed);
        let tree = Arc::new(Self::make_tree(
            id,
            &self.store,
            &self.config.tree_config,
            self.listener.as_ref(),
            &self.crash,
        ));
        let prefix = group_prefix(group);
        let moved = self.init.scan_prefix(&prefix, usize::MAX);
        for (composite, value) in &moved {
            let (_, item) = decode_composite(composite).expect("forest wrote this key");
            tree.put(item, value)?;
        }
        // Chaos hook: die after the copy but before the commit — the INIT
        // tree still holds every entry, and the half-built tree is an
        // orphan recovery ignores (no `ForestSplitOut` record was logged).
        self.crash.fire(CrashPoint::MidSplit)?;
        for (composite, _) in &moved {
            self.init.delete(composite)?;
        }
        stripe.directory.insert(group.to_vec(), tree);
        stripe.init_counts.remove(group);
        // Commit record: logged only once the copy and deletes are durable,
        // so replaying the WAL rebuilds the directory exactly when the
        // split-out actually completed.
        if let Some(listener) = &self.listener {
            listener.on_event(
                id as u64,
                &TreeEvent::ForestSplitOut {
                    group: group.to_vec(),
                },
            );
        }
        drop(stripe);
        self.store.trace().emit(
            self.store.clock().now().0,
            TraceKind::TreeSplitOut,
            id as u64,
            moved.len() as u64,
        );
        if eviction {
            self.init_evictions.fetch_add(1, Ordering::Relaxed);
        } else {
            self.threshold_split_outs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, group: &[u8], item: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        match self.dedicated_tree(group) {
            Some(tree) => tree.get(item),
            None => self.init.get(&composite_key(group, item)),
        }
    }

    /// Deletes one edge.
    pub fn delete(&self, group: &[u8], item: &[u8]) -> StorageResult<()> {
        match self.dedicated_tree(group) {
            Some(tree) => tree.delete(item),
            None => {
                self.init.delete(&composite_key(group, item))?;
                let mut stripe = self.stripe_of(group).write();
                if let Some(c) = stripe.init_counts.get_mut(group) {
                    *c = c.saturating_sub(1);
                }
                Ok(())
            }
        }
    }

    /// All `(item, value)` pairs of `group`, in item order, up to `limit`.
    /// This is the adjacency-list scan behind one-hop neighbor queries.
    pub fn scan_group(&self, group: &[u8], limit: usize) -> Entries {
        match self.dedicated_tree(group) {
            Some(tree) => tree.scan_range(None, None, limit),
            None => self
                .init
                .scan_prefix(&group_prefix(group), limit)
                .into_iter()
                .map(|(composite, value)| {
                    let (_, item) = decode_composite(&composite).expect("forest key");
                    (item.to_vec(), value)
                })
                .collect(),
        }
    }

    /// Batched adjacency scan over many groups at once — the vectorized
    /// fast path behind frontier expansion.
    ///
    /// `groups` is a list of `(caller tag, group bytes)` pairs. For every
    /// edge of each group whose item is a fixed 8-byte tail (the graph
    /// layer's big-endian `dst` encoding), `visit(tag, item, value)` is
    /// called in item order; returning `false` ends that group early. At
    /// most `per_group_limit` edges are emitted per group. Items of any
    /// other width are skipped — this entry point exists for the edge
    /// encoding, not for arbitrary forest values.
    ///
    /// Groups resident in the INIT tree are sorted by composite prefix and
    /// scanned in **one** batched pass, so groups sharing a leaf page
    /// touch that segment once (see [`ScanOutcome::segments_scanned`]);
    /// requests that repeat the same split-out group are coalesced into a
    /// single batched scan of its dedicated tree. Sealed pages are
    /// served from their packed CSR segments; pages with buffered deltas
    /// pay one merge.
    pub fn scan_groups(
        &self,
        groups: &[(usize, Vec<u8>)],
        per_group_limit: usize,
        visit: &mut BatchVisitor<'_>,
    ) -> ScanOutcome {
        let mut outcome = ScanOutcome::default();
        let mut init_resident: Vec<(usize, Vec<u8>)> = Vec::new();
        // Frontier batches routinely repeat hot groups (power-law graphs
        // revisit the same whales every hop), so requests against the same
        // dedicated tree are coalesced into one batched scan: the tree's
        // leaves are walked once and each requesting tag replays from the
        // shared segment instead of re-scanning it.
        type DedicatedBatch<'a> = BTreeMap<&'a [u8], (Arc<BwTree>, Vec<(usize, Vec<u8>)>)>;
        let mut dedicated: DedicatedBatch<'_> = BTreeMap::new();
        for &(tag, ref group) in groups {
            match self.dedicated_tree(group) {
                Some(tree) => {
                    dedicated
                        .entry(group.as_slice())
                        .or_insert_with(|| (tree, Vec::new()))
                        .1
                        .push((tag, Vec::new()));
                }
                None => init_resident.push((tag, group_prefix(group))),
            }
        }
        for (_, (tree, requests)) in dedicated {
            outcome.absorb(tree.scan_prefix_batch(&requests, per_group_limit, visit));
        }
        if !init_resident.is_empty() {
            // Composite prefixes sort exactly like their groups (the
            // length prefix keeps groups from interleaving), so one sorted
            // pass walks the INIT tree's leaves monotonically.
            init_resident.sort_by(|a, b| a.1.cmp(&b.1));
            outcome.absorb(
                self.init
                    .scan_prefix_batch(&init_resident, per_group_limit, visit),
            );
        }
        outcome
    }

    /// Number of edges stored for `group`.
    pub fn group_len(&self, group: &[u8]) -> usize {
        match self.dedicated_tree(group) {
            Some(tree) => tree.entry_count(),
            None => self
                .init
                .scan_prefix(&group_prefix(group), usize::MAX)
                .len(),
        }
    }

    /// Total trees in the forest, including INIT.
    pub fn tree_count(&self) -> usize {
        1 + self
            .stripes
            .iter()
            .map(|s| s.read().directory.len())
            .sum::<usize>()
    }

    /// Total dirty pages across every tree (the group-commit trigger input
    /// for a durable node running deferred flushes). The tree list is
    /// snapshotted once; the per-tree counting runs with no stripe locked.
    pub fn dirty_count(&self) -> usize {
        let trees = self.dedicated_trees();
        self.init.dirty_count() + trees.iter().map(|t| t.dirty_count()).sum::<usize>()
    }

    /// Every tree in the forest, sorted by tree id (INIT first). For
    /// maintenance passes that must visit each tree deterministically,
    /// e.g. group-commit flushes.
    pub fn all_trees(&self) -> Vec<Arc<BwTree>> {
        let mut trees = self.dedicated_trees();
        trees.push(Arc::clone(&self.init));
        trees.sort_by_key(|t| t.id());
        trees
    }

    /// Total edges across all trees. Snapshots the `Arc<BwTree>` list once
    /// and aggregates outside the stripe locks — `entry_count` takes each
    /// tree's own lock, and holding a directory lock across that walk
    /// would serialize every concurrent writer.
    pub fn total_entries(&self) -> usize {
        let trees = self.dedicated_trees();
        self.init.entry_count() + trees.iter().map(|t| t.entry_count()).sum::<usize>()
    }

    /// Estimated memory footprint: every tree's footprint plus the hash
    /// directory. This is the "space cost" axis of Fig. 11 — many small
    /// trees pay per-tree overhead.
    pub fn memory_footprint(&self) -> usize {
        let mut directory = 0usize;
        let mut trees = Vec::new();
        for stripe in &self.stripes {
            let guard = stripe.read();
            directory += guard
                .directory
                .keys()
                .map(|g| g.len() + 80) // key + Arc + table slot
                .sum::<usize>();
            trees.extend(guard.directory.values().cloned());
        }
        self.init.memory_footprint()
            + trees.iter().map(|t| t.memory_footprint()).sum::<usize>()
            + directory
    }

    /// Counters describing the forest's structural activity.
    pub fn stats(&self) -> ForestStatsSnapshot {
        ForestStatsSnapshot {
            dedicated_trees: self
                .stripes
                .iter()
                .map(|s| s.read().directory.len() as u64)
                .sum(),
            threshold_split_outs: self.threshold_split_outs.load(Ordering::Relaxed),
            init_evictions: self.init_evictions.load(Ordering::Relaxed),
        }
    }

    /// The shared store backing this forest.
    pub fn store(&self) -> &AppendOnlyStore {
        &self.store
    }

    /// Routes a relocation fix-up from the space reclaimer to the right
    /// tree. `tag` is the `bg3_bwtree::PageTag` the record carried.
    pub fn repair_relocated(
        &self,
        tag: u64,
        old: bg3_storage::PageAddr,
        new: bg3_storage::PageAddr,
    ) -> bool {
        let decoded = bg3_bwtree::PageTag::decode(tag);
        if decoded.tree == INIT_TREE_ID {
            return self.init.repair_relocated(decoded.page, old, new);
        }
        self.dedicated_trees()
            .iter()
            .find(|t| t.id() == decoded.tree)
            .is_some_and(|t| t.repair_relocated(decoded.page, old, new))
    }

    /// Routes a scrubber resupply request to the owning tree: re-encodes
    /// the record `tag` kept at `old`, if this forest still owns that slot.
    pub fn materialize_record(&self, tag: u64, old: bg3_storage::PageAddr) -> Option<Vec<u8>> {
        let decoded = bg3_bwtree::PageTag::decode(tag);
        if decoded.tree == INIT_TREE_ID {
            return self.init.materialize_record(decoded.page, old);
        }
        self.dedicated_trees()
            .iter()
            .find(|t| t.id() == decoded.tree)
            .and_then(|t| t.materialize_record(decoded.page, old))
    }
}

impl std::fmt::Debug for BwTreeForest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BwTreeForest")
            .field("trees", &self.tree_count())
            .field("entries", &self.total_entries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::{StoreBuilder, StoreConfig};

    fn forest(threshold: usize) -> BwTreeForest {
        BwTreeForest::new(
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            ForestConfig::default().with_split_out_threshold(threshold),
        )
    }

    #[test]
    fn put_get_before_split_out() {
        let f = forest(100);
        f.put(b"userA", b"video1", b"t=1").unwrap();
        f.put(b"userB", b"video1", b"t=2").unwrap();
        assert_eq!(f.get(b"userA", b"video1").unwrap(), Some(b"t=1".to_vec()));
        assert_eq!(f.get(b"userB", b"video1").unwrap(), Some(b"t=2".to_vec()));
        assert_eq!(f.get(b"userC", b"video1").unwrap(), None);
        assert_eq!(f.tree_count(), 1, "everyone lives in INIT");
    }

    #[test]
    fn active_group_splits_out_and_keeps_data() {
        let f = forest(10);
        for i in 0..25u32 {
            f.put(b"userA", format!("video{i:03}").as_bytes(), b"x")
                .unwrap();
        }
        // userA crossed the threshold → dedicated tree.
        assert!(f.dedicated_tree(b"userA").is_some());
        assert_eq!(f.tree_count(), 2);
        assert_eq!(f.group_len(b"userA"), 25);
        for i in 0..25u32 {
            assert_eq!(
                f.get(b"userA", format!("video{i:03}").as_bytes()).unwrap(),
                Some(b"x".to_vec())
            );
        }
        // INIT no longer holds userA's edges.
        assert_eq!(f.init_tree().entry_count(), 0);
        assert_eq!(f.stats().threshold_split_outs, 1);
    }

    #[test]
    fn ordinary_groups_stay_in_init() {
        let f = forest(10);
        for u in 0..50u32 {
            let user = format!("user{u:03}");
            for v in 0..3u32 {
                f.put(user.as_bytes(), format!("v{v}").as_bytes(), b"x")
                    .unwrap();
            }
        }
        assert_eq!(f.tree_count(), 1, "3 edges each: nobody splits out");
        assert_eq!(f.total_entries(), 150);
    }

    #[test]
    fn dedicated_tree_uses_truncated_keys() {
        let f = forest(2);
        for i in 0..5u32 {
            f.put(b"heavy_user_with_long_id", format!("v{i}").as_bytes(), b"x")
                .unwrap();
        }
        let tree = f.dedicated_tree(b"heavy_user_with_long_id").unwrap();
        let entries = tree.scan_range(None, None, usize::MAX);
        // Keys are bare item ids — no group prefix.
        assert!(entries.iter().all(|(k, _)| k.starts_with(b"v")));
    }

    #[test]
    fn init_tree_eviction_kicks_out_heaviest_group() {
        let f = BwTreeForest::new(
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            ForestConfig::default()
                .with_split_out_threshold(usize::MAX)
                .with_init_tree_max_entries(10),
        );
        for i in 0..8u32 {
            f.put(b"whale", format!("v{i}").as_bytes(), b"x").unwrap();
        }
        for i in 0..3u32 {
            f.put(b"minnow", format!("v{i}").as_bytes(), b"x").unwrap();
        }
        // 11 entries > 10 → the whale (8 edges) gets evicted.
        assert!(f.dedicated_tree(b"whale").is_some());
        assert!(f.dedicated_tree(b"minnow").is_none());
        assert_eq!(f.stats().init_evictions, 1);
        assert_eq!(f.group_len(b"whale"), 8);
        assert_eq!(f.group_len(b"minnow"), 3);
    }

    #[test]
    fn scan_group_is_ordered_and_limited() {
        let f = forest(100);
        for i in (0..10u32).rev() {
            f.put(
                b"u",
                format!("item{i}").as_bytes(),
                format!("{i}").as_bytes(),
            )
            .unwrap();
        }
        let scan = f.scan_group(b"u", usize::MAX);
        assert_eq!(scan.len(), 10);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(f.scan_group(b"u", 4).len(), 4);
        // After split-out the scan result is identical.
        let f2 = forest(5);
        for i in (0..10u32).rev() {
            f2.put(
                b"u",
                format!("item{i}").as_bytes(),
                format!("{i}").as_bytes(),
            )
            .unwrap();
        }
        assert!(f2.dedicated_tree(b"u").is_some());
        assert_eq!(f2.scan_group(b"u", usize::MAX), scan);
    }

    #[test]
    fn scan_groups_matches_scan_group_across_tiers() {
        // 8-byte items (the edge encoding): "whale" splits out, the rest
        // stay in INIT; one batched call must agree with per-group scans.
        let f = forest(6);
        for d in 0..10u64 {
            f.put(b"whale", &d.to_be_bytes(), b"W").unwrap();
        }
        for u in 0..5u32 {
            let group = format!("user{u}");
            for d in 0..3u64 {
                f.put(group.as_bytes(), &(d * 7).to_be_bytes(), b"v")
                    .unwrap();
            }
        }
        assert!(f.dedicated_tree(b"whale").is_some());
        let mut groups: Vec<(usize, Vec<u8>)> = vec![(0, b"whale".to_vec())];
        for u in 0..5u32 {
            groups.push((1 + u as usize, format!("user{u}").into_bytes()));
        }
        let mut got: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); groups.len()];
        let outcome = f.scan_groups(&groups, usize::MAX, &mut |tag, item, value| {
            got[tag].push((u64::from_be_bytes(item.try_into().unwrap()), value.to_vec()));
            true
        });
        for (tag, group) in &groups {
            let want: Vec<(u64, Vec<u8>)> = f
                .scan_group(group, usize::MAX)
                .into_iter()
                .map(|(k, v)| (u64::from_be_bytes(k.as_slice().try_into().unwrap()), v))
                .collect();
            assert_eq!(got[*tag], want, "group {tag} agrees with scan_group");
        }
        // Five INIT-resident groups share one small tree: far fewer
        // segments than groups.
        assert!(outcome.segments_scanned < groups.len() as u64 + 1);

        // Per-group limit caps each group independently.
        let mut counts = vec![0usize; groups.len()];
        f.scan_groups(&groups, 2, &mut |tag, _, _| {
            counts[tag] += 1;
            true
        });
        assert_eq!(counts, vec![2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn delete_works_in_both_tiers() {
        let f = forest(3);
        f.put(b"small", b"v1", b"x").unwrap();
        f.delete(b"small", b"v1").unwrap();
        assert_eq!(f.get(b"small", b"v1").unwrap(), None);

        for i in 0..6u32 {
            f.put(b"big", format!("v{i}").as_bytes(), b"x").unwrap();
        }
        assert!(f.dedicated_tree(b"big").is_some());
        f.delete(b"big", b"v0").unwrap();
        assert_eq!(f.get(b"big", b"v0").unwrap(), None);
        assert_eq!(f.group_len(b"big"), 5);
    }

    #[test]
    fn groups_are_isolated() {
        let f = forest(4);
        for i in 0..8u32 {
            f.put(b"a", format!("v{i}").as_bytes(), b"from-a").unwrap();
        }
        f.put(b"b", b"v0", b"from-b").unwrap();
        assert_eq!(f.get(b"b", b"v0").unwrap(), Some(b"from-b".to_vec()));
        assert_eq!(f.get(b"a", b"v0").unwrap(), Some(b"from-a".to_vec()));
        assert_eq!(f.scan_group(b"b", usize::MAX).len(), 1);
    }

    #[test]
    fn memory_footprint_reflects_tree_count() {
        // Mirrors Fig. 11: same data, more trees → more memory.
        let few = forest(usize::MAX);
        let many = forest(1);
        for u in 0..50u32 {
            let user = format!("user{u:03}");
            for v in 0..4u32 {
                let item = format!("v{v}");
                few.put(user.as_bytes(), item.as_bytes(), b"x").unwrap();
                many.put(user.as_bytes(), item.as_bytes(), b"x").unwrap();
            }
        }
        assert_eq!(few.tree_count(), 1);
        assert_eq!(many.tree_count(), 51);
        assert!(
            many.memory_footprint() > few.memory_footprint(),
            "per-tree overhead dominates: {} vs {}",
            many.memory_footprint(),
            few.memory_footprint()
        );
        assert_eq!(few.total_entries(), many.total_entries());
    }

    #[test]
    fn mid_split_crash_leaves_init_tree_authoritative() {
        let f = forest(10);
        for i in 0..10u32 {
            f.put(b"userA", format!("v{i:02}").as_bytes(), b"x")
                .unwrap();
        }
        f.crash_switch().arm(CrashPoint::MidSplit);
        // The 11th put crosses the threshold and dies mid-split-out.
        let err = f.put(b"userA", b"v10", b"x").unwrap_err();
        assert!(err.is_crash());
        // Nothing committed: no dedicated tree, INIT still holds the group
        // (including the put that was logged before the split began).
        assert!(f.dedicated_tree(b"userA").is_none());
        assert_eq!(f.group_len(b"userA"), 11);
        assert_eq!(f.stats().threshold_split_outs, 0);
        // The switch disarmed itself: the next write completes the split.
        f.put(b"userA", b"v11", b"x").unwrap();
        assert!(f.dedicated_tree(b"userA").is_some());
        assert_eq!(f.group_len(b"userA"), 12);
    }

    #[test]
    fn split_out_commit_event_is_emitted_last() {
        use bg3_bwtree::RecordingListener;
        let rec = RecordingListener::new();
        let f = BwTreeForest::with_listener(
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            ForestConfig::default().with_split_out_threshold(3),
            rec.clone(),
        );
        for i in 0..4u32 {
            f.put(b"hot", format!("v{i}").as_bytes(), b"x").unwrap();
        }
        let tree_id = f.dedicated_tree(b"hot").unwrap().id();
        let events = rec.drain();
        let commit = events
            .iter()
            .position(|(_, e)| matches!(e, TreeEvent::ForestSplitOut { group } if group == b"hot"))
            .expect("split-out commit logged");
        assert_eq!(events[commit].0, tree_id as u64, "tagged with the new tree");
        assert_eq!(
            commit,
            events.len() - 1,
            "commit record follows every copy and delete"
        );
    }

    #[test]
    fn single_stripe_forest_behaves_identically() {
        // stripes=1 degenerates to the old global-lock layout; every
        // operation must still work (routing, split-out, aggregates).
        let f = BwTreeForest::new(
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            ForestConfig::default()
                .with_split_out_threshold(4)
                .with_stripes(1),
        );
        for u in 0..10u32 {
            let user = format!("user{u}");
            for v in 0..6u32 {
                f.put(user.as_bytes(), format!("v{v}").as_bytes(), b"x")
                    .unwrap();
            }
        }
        assert_eq!(f.stats().dedicated_trees, 10);
        assert_eq!(f.total_entries(), 60);
        assert_eq!(f.all_trees().len(), 11);
        for u in 0..10u32 {
            assert_eq!(f.group_len(format!("user{u}").as_bytes()), 6);
        }
    }

    #[test]
    fn zero_stripes_clamps_to_one() {
        let f = BwTreeForest::new(
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            ForestConfig::default().with_stripes(0),
        );
        f.put(b"g", b"i", b"v").unwrap();
        assert_eq!(f.get(b"g", b"i").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn concurrent_writers_on_distinct_groups() {
        let f = Arc::new(forest(16));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                let group = format!("user{t}");
                for i in 0..100u32 {
                    f.put(group.as_bytes(), format!("v{i:03}").as_bytes(), b"x")
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.total_entries(), 800);
        assert_eq!(f.stats().dedicated_trees, 8, "every writer crossed 16");
        for t in 0..8u32 {
            assert_eq!(f.group_len(format!("user{t}").as_bytes()), 100);
        }
    }
}
