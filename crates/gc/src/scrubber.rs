//! Background integrity scrubber: walks sealed extents on a virtual-time
//! cadence, verifies every record frame at modelled sequential-read cost,
//! quarantines extents with silent corruption, and repairs them — intact
//! records re-homed to the stream tail, corrupt ones re-materialized from a
//! [`RepairSource`] — *before* normal GC is allowed to reclaim the space.
//!
//! The scrubber closes the gap the foreground read path cannot: a bit that
//! rots in a record nobody reads would otherwise survive until relocation
//! copied the damage forward. Here it is found within one full sweep of the
//! sealed extent population and either repaired or permanently fenced.

use crate::reclaimer::RelocationRouter;
use bg3_storage::{
    AppendOnlyStore, ExtentId, ExtentState, PageAddr, RepairSupply, StorageResult, StreamId,
    TraceKind,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Shareable round-robin scrub position, keyed per stream on the last
/// extent id scanned. Hand the same cursor to successive [`Scrubber`]
/// instances (e.g. one per engine scrub tick) so coverage keeps rotating
/// instead of restarting from the lowest extent every cycle.
pub type ScrubCursor = Arc<Mutex<HashMap<StreamId, ExtentId>>>;

/// Supplies replacement payloads for records whose stored frame is corrupt
/// beyond on-extent recovery. In the full engine this is the leader's
/// in-memory page images plus WAL/replica replay; benches may use
/// [`NullRepairSource`] to model unrepairable rot.
pub trait RepairSource: Send + Sync {
    /// Verdict for the record appended for `tag` at `old`: its original
    /// payload, [`RepairSupply::Drop`] when nothing references it anymore,
    /// or [`RepairSupply::Missing`] when no intact copy exists anywhere.
    fn resupply(&self, tag: u64, old: PageAddr) -> RepairSupply;
}

/// Repair source with no data: corrupt records stay unrepaired and their
/// extents stay quarantined (fail-fast reads) forever.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRepairSource;

impl RepairSource for NullRepairSource {
    fn resupply(&self, _tag: u64, _old: PageAddr) -> RepairSupply {
        RepairSupply::Missing
    }
}

impl<F, T> RepairSource for F
where
    F: Fn(u64, PageAddr) -> T + Send + Sync,
    T: Into<RepairSupply>,
{
    fn resupply(&self, tag: u64, old: PageAddr) -> RepairSupply {
        self(tag, old).into()
    }
}

/// Cadence and budget of the scrubber.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScrubConfig {
    /// Virtual-time nanoseconds between cycle starts in [`Scrubber::run_for`].
    pub interval_nanos: u64,
    /// Sealed extents verified per stream per cycle.
    pub extents_per_cycle: usize,
    /// Also verify the open (active-tail) extents — fsck mode. The steady
    /// state scrubs only sealed extents (the tail is still being written);
    /// a pre-recovery or pre-handoff deep pass wants everything checked.
    pub include_open: bool,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            // One cycle per simulated millisecond: slow enough that scrub
            // I/O stays background noise, fast enough that a full sweep of
            // a bench-sized store completes within one experiment.
            interval_nanos: 1_000_000,
            extents_per_cycle: 4,
            include_open: false,
        }
    }
}

/// Outcome of one scrub cycle (or an aggregate of many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Sealed extents whose frames were verified.
    pub extents_scanned: u64,
    /// Record frames checked (intact + corrupt).
    pub records_verified: u64,
    /// Frames that failed verification.
    pub corrupt_records: u64,
    /// Extents newly moved into quarantine this cycle.
    pub extents_quarantined: u64,
    /// Quarantined extents fully repaired and reclaimed this cycle.
    pub extents_repaired: u64,
    /// Extents left quarantined because the repair source had no copy.
    pub extents_unrepaired: u64,
    /// Corrupt records re-materialized from the repair source.
    pub records_resupplied: u64,
    /// Corrupt records the source declared unreferenced and repair dropped.
    pub records_dropped: u64,
    /// Bytes rewritten to the tail by repairs.
    pub moved_bytes: u64,
}

impl ScrubReport {
    /// Merges another report into this one.
    pub fn absorb(&mut self, other: ScrubReport) {
        self.extents_scanned += other.extents_scanned;
        self.records_verified += other.records_verified;
        self.corrupt_records += other.corrupt_records;
        self.extents_quarantined += other.extents_quarantined;
        self.extents_repaired += other.extents_repaired;
        self.extents_unrepaired += other.extents_unrepaired;
        self.records_resupplied += other.records_resupplied;
        self.records_dropped += other.records_dropped;
        self.moved_bytes += other.moved_bytes;
    }
}

/// Walks sealed extents round-robin, verifying and repairing.
pub struct Scrubber<S, R> {
    store: AppendOnlyStore,
    source: S,
    router: R,
    streams: Vec<StreamId>,
    config: ScrubConfig,
    /// Per-stream round-robin position, keyed on the last extent id
    /// scanned so progress survives extents appearing and disappearing
    /// between cycles.
    cursor: ScrubCursor,
}

impl<S: RepairSource, R: RelocationRouter> Scrubber<S, R> {
    /// Creates a scrubber over the page-data streams (BASE and DELTA) —
    /// the WAL stream is verified by recovery replay, not by scrubbing.
    pub fn new(store: AppendOnlyStore, source: S, router: R) -> Self {
        Scrubber {
            store,
            source,
            router,
            streams: vec![StreamId::BASE, StreamId::DELTA],
            config: ScrubConfig::default(),
            cursor: ScrubCursor::default(),
        }
    }

    /// Restricts the scrubber to specific streams.
    pub fn with_streams(mut self, streams: Vec<StreamId>) -> Self {
        self.streams = streams;
        self
    }

    /// Overrides cadence and per-cycle budget.
    pub fn with_config(mut self, config: ScrubConfig) -> Self {
        self.config = config;
        self
    }

    /// Resumes from (and advances) an externally owned round-robin
    /// cursor, so short-lived scrubbers keep rotating coverage.
    pub fn with_cursor(mut self, cursor: ScrubCursor) -> Self {
        self.cursor = cursor;
        self
    }

    /// The configured cadence/budget.
    pub fn config(&self) -> &ScrubConfig {
        &self.config
    }

    /// Runs one cycle: per stream, verifies up to `extents_per_cycle`
    /// sealed extents starting after the cursor, and immediately attempts
    /// repair of anything quarantined (this cycle or earlier). An extent
    /// whose repair source lacks a copy stays quarantined and is retried
    /// on the next visit.
    pub fn run_cycle(&self) -> StorageResult<ScrubReport> {
        let started = self.store.clock().now();
        let mut report = ScrubReport::default();
        for &stream in &self.streams {
            let mut sealed: Vec<ExtentId> = self
                .store
                .extent_infos(stream)?
                .into_iter()
                .filter(|i| {
                    i.state == ExtentState::Sealed
                        || (self.config.include_open && i.state == ExtentState::Open)
                })
                .map(|i| i.id)
                .collect();
            sealed.sort_unstable_by_key(|e| e.0);
            if sealed.is_empty() {
                continue;
            }
            // Resume after the last extent scanned; ids are monotone, so a
            // cursor pointing at a since-reclaimed extent still lands on
            // its successor.
            let start = {
                let cursor = self.cursor.lock();
                cursor
                    .get(&stream)
                    .map(|last| sealed.partition_point(|e| e.0 <= last.0))
                    .unwrap_or(0)
            };
            let take = self.config.extents_per_cycle.min(sealed.len());
            for i in 0..take {
                let extent = sealed[(start + i) % sealed.len()];
                let check = self.store.verify_extent(stream, extent)?;
                report.extents_scanned += 1;
                report.records_verified += check.records_verified;
                report.corrupt_records += check.corrupt_records;
                if check.newly_quarantined {
                    report.extents_quarantined += 1;
                }
                if self.store.is_quarantined(stream, extent)? {
                    match self.store.repair_extent(
                        stream,
                        extent,
                        |tag, old| self.source.resupply(tag, old),
                        |tag, old, new| self.router.repair(tag, old, new),
                    ) {
                        Ok(repair) => {
                            report.extents_repaired += 1;
                            report.records_resupplied += repair.resupplied_records;
                            report.records_dropped += repair.dropped_records;
                            report.moved_bytes += repair.moved_bytes;
                        }
                        // No intact copy anywhere: the extent stays
                        // read-fenced; everything else is a real error.
                        Err(e) if !e.is_crash() => {
                            report.extents_unrepaired += 1;
                        }
                        Err(e) => return Err(e),
                    }
                }
                self.cursor.lock().insert(stream, extent);
            }
        }
        let registry = self.store.stats().registry();
        registry.counter(bg3_obs::names::SCRUB_CYCLES_TOTAL).inc();
        let elapsed = self.store.clock().now().duration_since(started);
        self.store.stats().record_scrub_cycle_latency(elapsed);
        self.store.trace().emit(
            self.store.clock().now().0,
            TraceKind::ScrubCycle,
            report.extents_scanned,
            report.corrupt_records,
        );
        Ok(report)
    }

    /// Runs cycles on the configured cadence for `duration_nanos` of
    /// virtual time, advancing the store clock between cycles. Returns the
    /// aggregate report.
    pub fn run_for(&self, duration_nanos: u64) -> StorageResult<ScrubReport> {
        let mut total = ScrubReport::default();
        let deadline = self.store.clock().now().0 + duration_nanos;
        loop {
            total.absorb(self.run_cycle()?);
            let now = self.store.clock().now().0;
            if now + self.config.interval_nanos > deadline {
                return Ok(total);
            }
            self.store.clock().advance_nanos(self.config.interval_nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reclaimer::NullRouter;
    use bg3_storage::{StoreBuilder, StoreConfig, TraceEvent};
    use std::sync::Arc;

    fn small_store() -> AppendOnlyStore {
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(64)).build()
    }

    /// Appends `records` 16-byte records, returning (tag, addr, payload).
    fn seed(store: &AppendOnlyStore, records: usize) -> Vec<(u64, PageAddr, Vec<u8>)> {
        (0..records)
            .map(|i| {
                let payload = vec![i as u8; 16];
                let addr = store
                    .append(StreamId::DELTA, &payload, i as u64, None)
                    .unwrap();
                (i as u64, addr, payload)
            })
            .collect()
    }

    #[test]
    fn clean_store_scrubs_without_findings() {
        let store = small_store();
        seed(&store, 20);
        let scrubber = Scrubber::new(store.clone(), NullRepairSource, NullRouter)
            .with_streams(vec![StreamId::DELTA]);
        let report = scrubber.run_cycle().unwrap();
        assert!(report.extents_scanned > 0);
        assert!(report.records_verified > 0);
        assert_eq!(report.corrupt_records, 0);
        assert_eq!(report.extents_quarantined, 0);
        assert_eq!(
            store
                .stats()
                .registry()
                .counter(bg3_obs::names::SCRUB_CYCLES_TOTAL)
                .get(),
            1
        );
    }

    #[test]
    fn round_robin_cursor_covers_all_sealed_extents() {
        let store = small_store();
        seed(&store, 40); // ~10 sealed extents of 64B / 16B-records
        let scrubber = Scrubber::new(store.clone(), NullRepairSource, NullRouter)
            .with_streams(vec![StreamId::DELTA])
            .with_config(ScrubConfig {
                interval_nanos: 1_000,
                extents_per_cycle: 2,
                include_open: false,
            });
        let sealed = store
            .extent_infos(StreamId::DELTA)
            .unwrap()
            .into_iter()
            .filter(|i| i.state == ExtentState::Sealed)
            .count() as u64;
        let mut total = ScrubReport::default();
        for _ in 0..sealed.div_ceil(2) {
            total.absorb(scrubber.run_cycle().unwrap());
        }
        assert!(
            total.extents_scanned >= sealed,
            "cursor swept every sealed extent: {} scanned of {sealed}",
            total.extents_scanned
        );
    }

    #[test]
    fn scrub_finds_rot_quarantines_and_repairs_from_source() {
        let store = small_store();
        let records = seed(&store, 20);
        let (tag, addr, payload) = records[2].clone();
        store.corrupt_record_bit(addr, 7).unwrap();
        // Repair source: knows the original payload for the rotted record.
        let originals: Arc<Vec<(u64, Vec<u8>)>> =
            Arc::new(records.iter().map(|(t, _, p)| (*t, p.clone())).collect());
        let source = move |t: u64, _old: PageAddr| {
            originals
                .iter()
                .find(|(o, _)| *o == t)
                .map(|(_, p)| p.clone())
        };
        let moved: Arc<Mutex<HashMap<u64, PageAddr>>> = Arc::new(Mutex::new(HashMap::new()));
        let moved_for_router = Arc::clone(&moved);
        let router = move |t: u64, _old: PageAddr, new: PageAddr| {
            moved_for_router.lock().insert(t, new);
        };
        let scrubber = Scrubber::new(store.clone(), source, router)
            .with_streams(vec![StreamId::DELTA])
            .with_config(ScrubConfig {
                interval_nanos: 1_000,
                extents_per_cycle: 16,
                include_open: false,
            });
        let report = scrubber.run_cycle().unwrap();
        assert_eq!(report.corrupt_records, 1);
        assert_eq!(report.extents_quarantined, 1);
        assert_eq!(report.extents_repaired, 1);
        assert_eq!(report.records_resupplied, 1);
        // The rotted record reads back with its original bytes at its new
        // home; the old extent is gone.
        let new_addr = moved.lock().get(&tag).copied().expect("record re-homed");
        assert_eq!(&store.read(new_addr).unwrap()[..], payload.as_slice());
        assert!(store.read(addr).is_err(), "old extent reclaimed");
        // Trace order: quarantine before repair before relocate-reclaim.
        let events: Vec<TraceEvent> = store.trace().events();
        let seq_of = |kind: TraceKind| {
            events
                .iter()
                .find(|e| e.kind == kind && e.subject == addr.extent.0)
                .map(|e| e.seq)
                .expect("event present")
        };
        assert!(seq_of(TraceKind::ExtentQuarantine) < seq_of(TraceKind::ExtentRepair));
        assert!(seq_of(TraceKind::ExtentRepair) < seq_of(TraceKind::ExtentRelocate));
    }

    #[test]
    fn unrepairable_rot_stays_quarantined_and_is_retried() {
        let store = small_store();
        let records = seed(&store, 20);
        let (_, addr, _) = records[2];
        store.corrupt_record_bit(addr, 3).unwrap();
        let scrubber = Scrubber::new(store.clone(), NullRepairSource, NullRouter)
            .with_streams(vec![StreamId::DELTA])
            .with_config(ScrubConfig {
                interval_nanos: 1_000,
                extents_per_cycle: 16,
                include_open: false,
            });
        let report = scrubber.run_cycle().unwrap();
        assert_eq!(report.extents_quarantined, 1);
        assert_eq!(report.extents_repaired, 0);
        assert_eq!(report.extents_unrepaired, 1);
        assert!(store.is_quarantined(StreamId::DELTA, addr.extent).unwrap());
        // Next sweep retries the repair (still no source, still fenced).
        let report = scrubber.run_cycle().unwrap();
        assert_eq!(report.extents_unrepaired, 1);
        assert!(store.read(addr).is_err(), "reads stay fail-fast");
    }

    #[test]
    fn run_for_paces_cycles_on_virtual_time() {
        let store = small_store();
        seed(&store, 20);
        let scrubber = Scrubber::new(store.clone(), NullRepairSource, NullRouter)
            .with_streams(vec![StreamId::DELTA])
            .with_config(ScrubConfig {
                interval_nanos: 1_000,
                extents_per_cycle: 1,
                include_open: false,
            });
        let before = store.clock().now().0;
        scrubber.run_for(10_000).unwrap();
        let cycles = store
            .stats()
            .registry()
            .counter(bg3_obs::names::SCRUB_CYCLES_TOTAL)
            .get();
        assert!(cycles >= 10, "one cycle per interval: got {cycles}");
        assert!(store.clock().now().0 >= before + 9_000);
    }
}
