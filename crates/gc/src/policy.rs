//! Extent-selection policies.

use bg3_storage::{ExtentId, ExtentInfo, ExtentState, SimInstant};

/// What the reclaimer should do with one extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanAction {
    /// Rewrite the extent's valid records to the stream tail, then free it.
    Relocate(ExtentId),
    /// Free the extent without moving anything — every record has expired.
    Expire(ExtentId),
}

/// An ordered batch of reclamation actions for one cycle.
pub type ReclaimPlan = Vec<PlanAction>;

/// Strategy choosing which sealed extents to reclaim this cycle.
///
/// `candidates` contains only sealed, still-live extents. `budget` is the
/// maximum number of extents the cycle may touch (Algorithm 2's `n`).
pub trait ReclaimPolicy: Send + Sync {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Builds this cycle's plan.
    fn plan(&self, candidates: &[ExtentInfo], now: SimInstant, budget: usize) -> ReclaimPlan;
}

/// Keeps only sealed extents that actually contain garbage or can expire.
fn reclaimable(candidates: &[ExtentInfo]) -> Vec<&ExtentInfo> {
    candidates
        .iter()
        .filter(|e| {
            e.state == ExtentState::Sealed && (e.invalid_records > 0 || e.ttl_deadline.is_some())
        })
        .collect()
}

/// Traditional Bw-tree FIFO reclamation: scan from the back of the queue
/// (oldest extent first), rewriting whatever is still valid.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoPolicy;

impl ReclaimPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn plan(&self, candidates: &[ExtentInfo], _now: SimInstant, budget: usize) -> ReclaimPlan {
        let mut live: Vec<&ExtentInfo> = candidates
            .iter()
            .filter(|e| e.state == ExtentState::Sealed)
            .collect();
        live.sort_by_key(|e| e.created_at);
        live.into_iter()
            .take(budget)
            .map(|e| PlanAction::Relocate(e.id))
            .collect()
    }
}

/// ArkDB-style greedy policy (Table 2 baseline): highest fragmentation rate
/// first.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirtyRatioPolicy;

impl ReclaimPolicy for DirtyRatioPolicy {
    fn name(&self) -> &'static str {
        "dirty-ratio"
    }

    fn plan(&self, candidates: &[ExtentInfo], _now: SimInstant, budget: usize) -> ReclaimPlan {
        let mut live = reclaimable(candidates);
        live.retain(|e| e.invalid_records > 0);
        live.sort_by(|a, b| {
            b.fragmentation_rate
                .partial_cmp(&a.fragmentation_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        live.into_iter()
            .take(budget)
            .map(|e| PlanAction::Relocate(e.id))
            .collect()
    }
}

/// BG3's workload-aware policy — Algorithm 2 plus the TTL bypass:
///
/// 1. Extents whose TTL deadline has passed are expired for free.
/// 2. Extents with a pending TTL deadline are bypassed ("allow it to expire
///    naturally", §3.3).
/// 3. The remaining extents are filtered to the *coldest* fraction by
///    update gradient (`getExtentsWithSmallestUpdateGradient`), then sorted
///    by fragmentation rate descending (`sortByFragmentationRate`), and the
///    top `budget` are relocated.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadAwarePolicy {
    /// Fraction of candidates (by ascending gradient) considered "cold"
    /// enough to relocate. Algorithm 2 takes the smallest-gradient group;
    /// 0.5 means the colder half.
    pub cold_fraction: f64,
}

impl Default for WorkloadAwarePolicy {
    fn default() -> Self {
        WorkloadAwarePolicy { cold_fraction: 0.5 }
    }
}

impl ReclaimPolicy for WorkloadAwarePolicy {
    fn name(&self) -> &'static str {
        "workload-aware"
    }

    fn plan(&self, candidates: &[ExtentInfo], now: SimInstant, budget: usize) -> ReclaimPlan {
        let mut plan = ReclaimPlan::new();

        // Step 1: free expired extents first — zero-cost reclamation.
        for e in candidates {
            if e.state != ExtentState::Sealed {
                continue;
            }
            if let Some(deadline) = e.ttl_deadline {
                if deadline <= now {
                    plan.push(PlanAction::Expire(e.id));
                    if plan.len() == budget {
                        return plan;
                    }
                }
            }
        }

        // Step 2: fully-dead extents are free to reclaim no matter how hot
        // they *were* — this is the payoff of having waited for a hot
        // extent to finish dying (Fig. 5: Extent A at t2).
        for e in candidates {
            if e.state == ExtentState::Sealed
                && e.valid_records == 0
                && e.invalid_records > 0
                && e.ttl_deadline.is_none_or(|d| d > now)
            {
                plan.push(PlanAction::Relocate(e.id));
                if plan.len() == budget {
                    return plan;
                }
            }
        }

        // Step 3: at the margin, relocate *cold* extents — still-dying ones
        // are left to keep dying (moving their survivors would be wasted
        // I/O). TTL'd extents are bypassed to expire naturally.
        let mut movable: Vec<&ExtentInfo> = reclaimable(candidates)
            .into_iter()
            .filter(|e| e.ttl_deadline.is_none() && e.invalid_records > 0 && e.valid_records > 0)
            .collect();
        movable.sort_by(|a, b| {
            a.update_gradient
                .partial_cmp(&b.update_gradient)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        let cold_len = ((movable.len() as f64 * self.cold_fraction).ceil() as usize)
            .clamp(usize::from(!movable.is_empty()), movable.len());
        let mut cold = movable[..cold_len].to_vec();
        cold.sort_by(|a, b| {
            b.fragmentation_rate
                .partial_cmp(&a.fragmentation_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        plan.extend(
            cold.into_iter()
                .take(budget.saturating_sub(plan.len()))
                .map(|e| PlanAction::Relocate(e.id)),
        );
        plan
    }
}

/// The paper's stated future work (§4.4): for workloads with *long* TTLs,
/// bypassing every TTL extent wastes space for the whole TTL window.
/// This hybrid bypasses only extents whose deadline is **near** (within
/// `bypass_window_nanos`); far-from-expiry extents participate in normal
/// gradient + fragmentation selection, with their remaining TTL preserved
/// through relocation.
#[derive(Debug, Clone, Copy)]
pub struct HybridTtlGradientPolicy {
    /// Extents expiring within this many simulated nanoseconds are left to
    /// die naturally instead of being relocated.
    pub bypass_window_nanos: u64,
    /// Cold-fraction knob shared with [`WorkloadAwarePolicy`].
    pub cold_fraction: f64,
}

impl Default for HybridTtlGradientPolicy {
    fn default() -> Self {
        HybridTtlGradientPolicy {
            bypass_window_nanos: 60_000_000_000, // 60 simulated seconds
            cold_fraction: 0.5,
        }
    }
}

impl ReclaimPolicy for HybridTtlGradientPolicy {
    fn name(&self) -> &'static str {
        "hybrid-ttl-gradient"
    }

    fn plan(&self, candidates: &[ExtentInfo], now: SimInstant, budget: usize) -> ReclaimPlan {
        let mut plan = ReclaimPlan::new();
        // Expired extents are always free wins.
        for e in candidates {
            if e.state != ExtentState::Sealed {
                continue;
            }
            if let Some(deadline) = e.ttl_deadline {
                if deadline <= now {
                    plan.push(PlanAction::Expire(e.id));
                    if plan.len() == budget {
                        return plan;
                    }
                }
            }
        }
        // Fully-dead extents are free wins regardless of TTL or heat.
        for e in candidates {
            if e.state == ExtentState::Sealed
                && e.valid_records == 0
                && e.invalid_records > 0
                && e.ttl_deadline.is_none_or(|d| d > now)
            {
                plan.push(PlanAction::Relocate(e.id));
                if plan.len() == budget {
                    return plan;
                }
            }
        }
        // Relocatable: fragmented extents that are either TTL-free or far
        // from expiry (relocating near-expiry data would be wasted I/O).
        let near = |e: &ExtentInfo| {
            e.ttl_deadline
                .is_some_and(|d| d > now && d.duration_since(now) <= self.bypass_window_nanos)
        };
        let mut movable: Vec<&ExtentInfo> = reclaimable(candidates)
            .into_iter()
            .filter(|e| e.invalid_records > 0 && e.valid_records > 0)
            .filter(|e| e.ttl_deadline.is_none_or(|d| d > now) && !near(e))
            .collect();
        movable.sort_by(|a, b| {
            a.update_gradient
                .partial_cmp(&b.update_gradient)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        let cold_len = ((movable.len() as f64 * self.cold_fraction).ceil() as usize)
            .clamp(usize::from(!movable.is_empty()), movable.len());
        let mut cold = movable[..cold_len].to_vec();
        cold.sort_by(|a, b| {
            b.fragmentation_rate
                .partial_cmp(&a.fragmentation_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        plan.extend(
            cold.into_iter()
                .take(budget.saturating_sub(plan.len()))
                .map(|e| PlanAction::Relocate(e.id)),
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::StreamId;

    fn info(
        id: u64,
        created: u64,
        frag: f64,
        gradient: f64,
        ttl: Option<u64>,
        state: ExtentState,
    ) -> ExtentInfo {
        let invalid = (frag * 10.0).round() as u64;
        ExtentInfo {
            id: ExtentId(id),
            stream: StreamId::DELTA,
            state,
            quarantined: false,
            valid_records: 10 - invalid,
            invalid_records: invalid,
            valid_bytes: (10 - invalid) * 100,
            capacity: 2048,
            used_bytes: 1000,
            fragmentation_rate: frag,
            update_gradient: gradient,
            last_update: SimInstant(created + 5),
            created_at: SimInstant(created),
            ttl_deadline: ttl.map(SimInstant),
        }
    }

    #[test]
    fn fifo_picks_oldest_first() {
        let candidates = vec![
            info(1, 300, 0.1, 0.0, None, ExtentState::Sealed),
            info(2, 100, 0.9, 0.0, None, ExtentState::Sealed),
            info(3, 200, 0.5, 0.0, None, ExtentState::Sealed),
        ];
        let plan = FifoPolicy.plan(&candidates, SimInstant(1000), 2);
        assert_eq!(
            plan,
            vec![
                PlanAction::Relocate(ExtentId(2)),
                PlanAction::Relocate(ExtentId(3))
            ]
        );
    }

    #[test]
    fn dirty_ratio_picks_most_fragmented() {
        let candidates = vec![
            info(1, 0, 0.2, 5.0, None, ExtentState::Sealed),
            info(2, 0, 0.8, 5.0, None, ExtentState::Sealed),
            info(3, 0, 0.5, 0.0, None, ExtentState::Sealed),
        ];
        let plan = DirtyRatioPolicy.plan(&candidates, SimInstant(1000), 2);
        assert_eq!(
            plan,
            vec![
                PlanAction::Relocate(ExtentId(2)),
                PlanAction::Relocate(ExtentId(3))
            ]
        );
    }

    #[test]
    fn dirty_ratio_skips_clean_and_open_extents() {
        let candidates = vec![
            info(1, 0, 0.0, 0.0, None, ExtentState::Sealed),
            info(2, 0, 0.9, 0.0, None, ExtentState::Open),
        ];
        assert!(DirtyRatioPolicy
            .plan(&candidates, SimInstant(0), 4)
            .is_empty());
    }

    #[test]
    fn workload_aware_prefers_cold_extents() {
        // Paper's Fig. 5 scenario at t1: A is hot (gradient high), C is cold
        // with some garbage. Traditional policies pick A (highest frag);
        // workload-aware picks the cold one.
        let candidates = vec![
            info(1, 0, 0.6, 100.0, None, ExtentState::Sealed), // Extent A: hot
            info(3, 0, 0.4, 0.1, None, ExtentState::Sealed),   // Extent C: cold
        ];
        let plan = WorkloadAwarePolicy::default().plan(&candidates, SimInstant(1000), 1);
        assert_eq!(plan, vec![PlanAction::Relocate(ExtentId(3))]);
        let greedy = DirtyRatioPolicy.plan(&candidates, SimInstant(1000), 1);
        assert_eq!(greedy, vec![PlanAction::Relocate(ExtentId(1))]);
    }

    #[test]
    fn workload_aware_bypasses_pending_ttl_and_expires_elapsed() {
        // Paper's Fig. 5 Extent B: everything expires at t2, so at t1 it is
        // bypassed; once t2 passes it is freed without movement.
        let candidates = vec![
            info(2, 0, 0.6, 0.0, Some(2_000), ExtentState::Sealed), // Extent B
            info(3, 0, 0.3, 0.0, None, ExtentState::Sealed),
        ];
        let at_t1 = WorkloadAwarePolicy::default().plan(&candidates, SimInstant(1_000), 2);
        assert_eq!(
            at_t1,
            vec![PlanAction::Relocate(ExtentId(3))],
            "TTL extent bypassed before its deadline"
        );
        let at_t2 = WorkloadAwarePolicy::default().plan(&candidates, SimInstant(2_000), 2);
        assert_eq!(at_t2[0], PlanAction::Expire(ExtentId(2)));
    }

    #[test]
    fn workload_aware_respects_budget() {
        let candidates: Vec<ExtentInfo> = (0..10)
            .map(|i| info(i, 0, 0.5, i as f64, None, ExtentState::Sealed))
            .collect();
        let plan = WorkloadAwarePolicy::default().plan(&candidates, SimInstant(0), 3);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn workload_aware_budget_counts_expirations() {
        let candidates = vec![
            info(1, 0, 0.5, 0.0, Some(10), ExtentState::Sealed),
            info(2, 0, 0.5, 0.0, Some(10), ExtentState::Sealed),
            info(3, 0, 0.5, 0.0, None, ExtentState::Sealed),
        ];
        let plan = WorkloadAwarePolicy::default().plan(&candidates, SimInstant(100), 2);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|a| matches!(a, PlanAction::Expire(_))));
    }

    #[test]
    fn empty_candidates_produce_empty_plans() {
        for policy in [
            &FifoPolicy as &dyn ReclaimPolicy,
            &DirtyRatioPolicy,
            &WorkloadAwarePolicy::default(),
            &HybridTtlGradientPolicy::default(),
        ] {
            assert!(policy.plan(&[], SimInstant(0), 5).is_empty());
        }
    }

    #[test]
    fn hybrid_relocates_far_ttl_but_bypasses_near_ttl() {
        let policy = HybridTtlGradientPolicy {
            bypass_window_nanos: 1_000,
            cold_fraction: 1.0,
        };
        let now = SimInstant(10_000);
        let candidates = vec![
            // Expiring in 500 ns: bypass (would be wasted I/O).
            info(1, 0, 0.8, 0.0, Some(10_500), ExtentState::Sealed),
            // Expiring in 1 simulated hour: the 30-day-TTL case §4.4 calls
            // out — relocate instead of hoarding space.
            info(2, 0, 0.6, 0.0, Some(3_600_000_000_000), ExtentState::Sealed),
            // Already expired: free.
            info(3, 0, 0.2, 0.0, Some(9_000), ExtentState::Sealed),
        ];
        let plan = policy.plan(&candidates, now, 4);
        assert_eq!(
            plan,
            vec![
                PlanAction::Expire(ExtentId(3)),
                PlanAction::Relocate(ExtentId(2)),
            ]
        );
    }

    #[test]
    fn hybrid_matches_workload_aware_without_ttls() {
        let candidates = vec![
            info(1, 0, 0.6, 100.0, None, ExtentState::Sealed),
            info(3, 0, 0.4, 0.1, None, ExtentState::Sealed),
        ];
        let hybrid = HybridTtlGradientPolicy::default().plan(&candidates, SimInstant(1000), 1);
        let aware = WorkloadAwarePolicy::default().plan(&candidates, SimInstant(1000), 1);
        assert_eq!(hybrid, aware);
    }
}
