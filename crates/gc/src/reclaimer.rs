//! The reclamation engine: executes a policy's plan against the store.

use crate::policy::{PlanAction, ReclaimPolicy};
use bg3_storage::{
    AppendOnlyStore, CrashPoint, CrashSwitch, PageAddr, RetryPolicy, StorageResult, StreamId,
};
use serde::{Deserialize, Serialize};

/// Receives address fix-ups when the reclaimer moves records. In a full
/// engine this routes to the owning Bw-tree via the record's
/// [`bg3_storage::PageAddr`] tag (see `bg3_bwtree::PageTag`).
pub trait RelocationRouter: Send + Sync {
    /// `tag` is the owner cookie the record was appended with; the record
    /// moved from `old` to `new`.
    fn repair(&self, tag: u64, old: PageAddr, new: PageAddr);
}

/// Router that ignores fix-ups (standalone GC benchmarks where nobody reads
/// relocated records afterwards).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRouter;

impl RelocationRouter for NullRouter {
    fn repair(&self, _tag: u64, _old: PageAddr, _new: PageAddr) {}
}

impl<F> RelocationRouter for F
where
    F: Fn(u64, PageAddr, PageAddr) + Send + Sync,
{
    fn repair(&self, tag: u64, old: PageAddr, new: PageAddr) {
        self(tag, old, new)
    }
}

/// Outcome of one reclamation cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Extents freed after relocating their valid data.
    pub relocated_extents: u64,
    /// Extents freed for free because their TTL elapsed.
    pub expired_extents: u64,
    /// Valid bytes rewritten to the tail — the background write bandwidth
    /// of Table 2.
    pub moved_bytes: u64,
}

impl CycleReport {
    /// Merges another report into this one.
    pub fn absorb(&mut self, other: CycleReport) {
        self.relocated_extents += other.relocated_extents;
        self.expired_extents += other.expired_extents;
        self.moved_bytes += other.moved_bytes;
    }
}

/// Drives space reclamation over the streams of one store.
pub struct SpaceReclaimer<P, R> {
    store: AppendOnlyStore,
    policy: P,
    router: R,
    streams: Vec<StreamId>,
    retry: RetryPolicy,
    crash: CrashSwitch,
}

impl<P: ReclaimPolicy, R: RelocationRouter> SpaceReclaimer<P, R> {
    /// Creates a reclaimer for the page-data streams (BASE and DELTA), the
    /// two streams BG3 segregates per ArkDB's design.
    pub fn new(store: AppendOnlyStore, policy: P, router: R) -> Self {
        SpaceReclaimer {
            store,
            policy,
            router,
            streams: vec![StreamId::BASE, StreamId::DELTA],
            retry: RetryPolicy::default(),
            crash: CrashSwitch::new(),
        }
    }

    /// Restricts the reclaimer to specific streams.
    pub fn with_streams(mut self, streams: Vec<StreamId>) -> Self {
        self.streams = streams;
        self
    }

    /// Overrides the relocation retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a shared crash switch (chaos harness):
    /// [`CrashPoint::MidGcCycle`] fires between plan actions.
    pub fn with_crash_switch(mut self, switch: CrashSwitch) -> Self {
        self.crash = switch;
        self
    }

    /// The configured policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Runs one cycle with a budget of `n` extents *per stream*
    /// (Algorithm 2's outer loop).
    pub fn run_cycle(&self, n: usize) -> StorageResult<CycleReport> {
        let mut report = CycleReport::default();
        let now = self.store.clock().now();
        for &stream in &self.streams {
            let mut candidates = self.store.extent_infos(stream)?;
            // Quarantined extents are the scrubber's to repair: relocation
            // would copy corrupt frames forward, expiry would drop records
            // the repair path could still re-home.
            candidates.retain(|i| !i.quarantined);
            let plan = self.policy.plan(&candidates, now, n);
            for action in plan {
                match action {
                    PlanAction::Relocate(extent) => {
                        // Transient injected failures mid-relocation are
                        // retried whole: a repeated pass re-moves every
                        // still-valid record (duplicates from the aborted
                        // pass are a bounded space leak, never corruption).
                        let moved = self.retry.run(self.store.clock(), || {
                            self.store.relocate_extent(stream, extent, |tag, old, new| {
                                self.router.repair(tag, old, new)
                            })
                        })?;
                        report.relocated_extents += 1;
                        report.moved_bytes += moved;
                    }
                    PlanAction::Expire(extent) => {
                        self.store.expire_extent(stream, extent)?;
                        report.expired_extents += 1;
                    }
                }
                // Chaos hook: die between reclamation actions, leaving the
                // cycle half done.
                self.crash.fire(CrashPoint::MidGcCycle)?;
            }
        }
        let registry = self.store.stats().registry();
        registry.counter(bg3_obs::names::GC_CYCLES_TOTAL).inc();
        registry
            .gauge(bg3_obs::names::GC_LAST_CYCLE_MOVED_BYTES)
            .set(report.moved_bytes as i64);
        Ok(report)
    }

    /// Runs cycles until both streams' utilization (valid/used bytes) is at
    /// least `target`, or no further progress is possible. Returns the
    /// aggregate report. This models the steady-state background GC the
    /// Table 2 experiment measures.
    pub fn reclaim_to_utilization(
        &self,
        target: f64,
        per_cycle: usize,
    ) -> StorageResult<CycleReport> {
        let mut total = CycleReport::default();
        loop {
            let mut garbage_before = 0u64;
            let mut below_target = false;
            for &s in &self.streams {
                let st = self.store.stream_stats(s)?;
                garbage_before += st.used_bytes.saturating_sub(st.valid_bytes);
                below_target |= st.used_bytes > 0 && st.utilization() < target;
            }
            if !below_target {
                return Ok(total);
            }
            let report = self.run_cycle(per_cycle)?;
            if report.relocated_extents == 0 && report.expired_extents == 0 {
                return Ok(total); // nothing reclaimable remains
            }
            // Real progress means garbage actually left the store. A policy
            // that only shuffles fully-valid extents (FIFO can) would loop
            // forever otherwise.
            let garbage_after: u64 = self
                .streams
                .iter()
                .map(|&s| {
                    self.store
                        .stream_stats(s)
                        .map(|st| st.used_bytes.saturating_sub(st.valid_bytes))
                        .unwrap_or(0)
                })
                .sum();
            total.absorb(report);
            if garbage_after >= garbage_before {
                return Ok(total);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DirtyRatioPolicy, WorkloadAwarePolicy};
    use bg3_storage::{StoreBuilder, StoreConfig};
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Store with tiny extents so tests roll over quickly.
    fn small_store() -> AppendOnlyStore {
        StoreBuilder::from_config(StoreConfig::counting().with_extent_capacity(64)).build()
    }

    /// Fills the DELTA stream with records, invalidating a subset, and
    /// returns the surviving addresses keyed by tag.
    fn seed(store: &AppendOnlyStore, records: usize, kill_every: usize) -> HashMap<u64, PageAddr> {
        let mut live = HashMap::new();
        for i in 0..records {
            let addr = store
                .append(StreamId::DELTA, &[i as u8; 16], i as u64, None)
                .unwrap();
            if kill_every > 0 && i % kill_every == 0 {
                store.invalidate(addr).unwrap();
            } else {
                live.insert(i as u64, addr);
            }
        }
        live
    }

    #[test]
    fn cycle_moves_garbage_extents_and_repairs_pointers() {
        let store = small_store();
        let live = seed(&store, 20, 2);
        let repaired: Arc<Mutex<HashMap<u64, PageAddr>>> = Arc::new(Mutex::new(HashMap::new()));
        let repaired_for_router = Arc::clone(&repaired);
        let router = move |tag: u64, _old: PageAddr, new: PageAddr| {
            repaired_for_router.lock().insert(tag, new);
        };
        let reclaimer = SpaceReclaimer::new(store.clone(), DirtyRatioPolicy, router)
            .with_streams(vec![StreamId::DELTA]);
        let report = reclaimer.run_cycle(10).unwrap();
        assert!(report.relocated_extents > 0);
        assert!(report.moved_bytes > 0);
        // Every live record either stayed (open extent) or was repaired to a
        // readable address.
        let repaired = repaired.lock();
        for (tag, old_addr) in &live {
            let addr = repaired.get(tag).copied().unwrap_or(*old_addr);
            assert_eq!(&store.read(addr).unwrap()[..], &[*tag as u8; 16]);
        }
    }

    #[test]
    fn expired_extents_are_freed_without_movement() {
        let store = small_store();
        for i in 0..8 {
            store
                .append(StreamId::DELTA, &[i; 16], i as u64, Some(1_000))
                .unwrap();
        }
        store.clock().advance_nanos(10_000);
        // Force-seal the open tail so it is a candidate.
        store
            .append(StreamId::DELTA, &[0xEE; 64], 99, None)
            .unwrap();
        let reclaimer =
            SpaceReclaimer::new(store.clone(), WorkloadAwarePolicy::default(), NullRouter)
                .with_streams(vec![StreamId::DELTA]);
        let report = reclaimer.run_cycle(10).unwrap();
        assert!(report.expired_extents > 0, "TTL extents expired");
        assert_eq!(report.moved_bytes, 0, "no bytes moved for TTL data");
        assert_eq!(store.stats().snapshot().relocation_bytes, 0);
    }

    #[test]
    fn reclaim_to_utilization_terminates_and_improves_utilization() {
        let store = small_store();
        seed(&store, 40, 2); // ~half the records are garbage
        let before = store.stream_stats(StreamId::DELTA).unwrap().utilization();
        let reclaimer = SpaceReclaimer::new(store.clone(), DirtyRatioPolicy, NullRouter)
            .with_streams(vec![StreamId::DELTA]);
        reclaimer.reclaim_to_utilization(0.95, 4).unwrap();
        let after = store.stream_stats(StreamId::DELTA).unwrap().utilization();
        assert!(after > before, "utilization improved: {before} -> {after}");
    }

    #[test]
    fn reclaim_to_utilization_stops_when_nothing_reclaimable() {
        let store = small_store();
        // All-valid data: utilization is 1.0 already, loop exits immediately.
        seed(&store, 10, 0);
        let reclaimer = SpaceReclaimer::new(store.clone(), DirtyRatioPolicy, NullRouter)
            .with_streams(vec![StreamId::DELTA]);
        let report = reclaimer.reclaim_to_utilization(0.99, 4).unwrap();
        assert_eq!(report, CycleReport::default());
    }

    #[test]
    fn relocation_retries_through_transient_append_faults() {
        use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // The relocation's first re-append fails; the whole-extent retry
        // succeeds on the second pass.
        let plan = FaultPlan::seeded(11).with_rule(
            FaultRule::new(FaultOp::Append, FaultKind::AppendFail, 1.0)
                .after(20)
                .at_most(1),
        );
        let store = StoreBuilder::from_config(
            StoreConfig::counting()
                .with_extent_capacity(64)
                .with_faults(plan),
        )
        .build();
        let live = seed(&store, 20, 2);
        let reclaimer = SpaceReclaimer::new(store.clone(), DirtyRatioPolicy, NullRouter)
            .with_streams(vec![StreamId::DELTA]);
        let report = reclaimer.run_cycle(10).unwrap();
        assert!(report.relocated_extents > 0);
        assert_eq!(store.fault_injector().total_fired(), 1, "the fault fired");
        // Every live record still reads back somewhere (NullRouter: sealed
        // extents keep old addresses only until their extent is reclaimed,
        // so just check the store stayed consistent).
        assert!(store.total_valid_bytes() >= live.len() as u64 * 16);
    }

    #[test]
    fn mid_gc_crash_stops_the_cycle_and_next_cycle_finishes() {
        use bg3_storage::{CrashPoint, CrashSwitch};
        let store = small_store();
        seed(&store, 40, 2);
        let switch = CrashSwitch::new();
        let reclaimer = SpaceReclaimer::new(store.clone(), DirtyRatioPolicy, NullRouter)
            .with_streams(vec![StreamId::DELTA])
            .with_crash_switch(switch.clone());
        switch.arm(CrashPoint::MidGcCycle);
        let err = reclaimer.run_cycle(10).unwrap_err();
        assert!(err.is_crash(), "cycle died after its first action");
        // Firing disarmed the switch: the next cycle reclaims the rest.
        let report = reclaimer.run_cycle(10).unwrap();
        assert!(report.relocated_extents + report.expired_extents > 0);
    }

    #[test]
    fn reclaim_under_a_full_disk_restores_health_and_write_flow() {
        use bg3_storage::DiskHealth;
        let store = small_store();
        for i in 0..8 {
            store
                .append(StreamId::DELTA, &[i; 16], i as u64, Some(1_000))
                .unwrap();
        }
        store.clock().advance_nanos(10_000);
        // Seal the open tail so the TTL extents are candidates.
        store
            .append(StreamId::DELTA, &[0xEE; 64], 99, None)
            .unwrap();
        store.disk_health_tracker().set(DiskHealth::Full);
        assert!(store.disk_health().sheds_writes());

        // GC runs below admission, so a full disk never blocks it. TTL
        // expiry frees extents without appending a byte — exactly the
        // recovery path a full disk needs.
        let reclaimer =
            SpaceReclaimer::new(store.clone(), WorkloadAwarePolicy::default(), NullRouter)
                .with_streams(vec![StreamId::DELTA]);
        let report = reclaimer.run_cycle(10).unwrap();
        assert!(report.expired_extents > 0, "expiry reclaims without writes");
        assert_eq!(
            store.disk_health(),
            DiskHealth::NearFull,
            "backend deletes stepped the ladder down"
        );
        assert!(!store.disk_health().sheds_writes(), "writes admitted again");

        // The next durable write is the proof of full recovery.
        store.append(StreamId::DELTA, b"proof", 1, None).unwrap();
        store.sync_stream(StreamId::DELTA).unwrap();
        assert_eq!(store.disk_health(), DiskHealth::Ok);
    }

    #[test]
    fn cycle_report_absorb_sums() {
        let mut a = CycleReport {
            relocated_extents: 1,
            expired_extents: 2,
            moved_bytes: 10,
        };
        a.absorb(CycleReport {
            relocated_extents: 3,
            expired_extents: 4,
            moved_bytes: 5,
        });
        assert_eq!(
            a,
            CycleReport {
                relocated_extents: 4,
                expired_extents: 6,
                moved_bytes: 15
            }
        );
    }
}
