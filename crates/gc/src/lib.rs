//! # bg3-gc
//!
//! Space reclamation for BG3's append-only storage (§3.3 of the paper).
//!
//! Out-of-place updates leave invalid records behind; a background reclaimer
//! periodically picks extents, rewrites their still-valid records to the
//! stream tail, and frees the extent. Every byte rewritten is write
//! amplification, so *which* extent gets picked matters:
//!
//! * [`FifoPolicy`] — the traditional Bw-tree approach: reclaim from the
//!   back of the queue (oldest extent first), regardless of content.
//! * [`DirtyRatioPolicy`] — the ArkDB-style baseline the paper compares
//!   against (Table 2 "Dirty ratio"): pick the extent with the highest
//!   fragmentation rate.
//! * [`WorkloadAwarePolicy`] — BG3's contribution (Algorithm 2): among the
//!   *coldest* extents (smallest update gradient) pick the most fragmented;
//!   skip extents with a pending TTL deadline entirely (they will expire
//!   wholesale for free) and drop extents whose deadline has passed without
//!   moving a byte.
//!
//! [`SpaceReclaimer`] executes a policy's plan against the store, routing
//! address fix-ups back to the owning Bw-trees through a
//! [`RelocationRouter`].

pub mod policy;
pub mod reclaimer;
pub mod scrubber;

pub use bg3_storage::RepairSupply;
pub use policy::{
    DirtyRatioPolicy, FifoPolicy, HybridTtlGradientPolicy, PlanAction, ReclaimPlan, ReclaimPolicy,
    WorkloadAwarePolicy,
};
pub use reclaimer::{CycleReport, NullRouter, RelocationRouter, SpaceReclaimer};
pub use scrubber::{
    NullRepairSource, RepairSource, ScrubConfig, ScrubCursor, ScrubReport, Scrubber,
};
