//! Core property-graph types.

use std::fmt;

/// Vertex identifier. ByteDance graphs identify users/videos with 64-bit
/// ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VertexId(pub u64);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Edge type (e.g. Follow, Like, Transfer). Adjacency lists are segregated
/// per type (§2.2: edges are "divided into multiple groups based on the
/// edge type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EdgeType(pub u16);

impl EdgeType {
    /// Douyin follow relationship.
    pub const FOLLOW: EdgeType = EdgeType(1);
    /// Douyin like action.
    pub const LIKE: EdgeType = EdgeType(2);
    /// Financial transfer (risk-control workload).
    pub const TRANSFER: EdgeType = EdgeType(3);

    /// The top bit marks reverse-adjacency indexes: engines that maintain
    /// in-edges store `dst -> src` under `etype.reversed()`. User-visible
    /// edge types must stay below `0x8000`.
    pub const REVERSE_BIT: u16 = 0x8000;

    /// The edge type under which this type's reverse index is stored.
    pub fn reversed(self) -> EdgeType {
        EdgeType(self.0 | Self::REVERSE_BIT)
    }

    /// True for reverse-index types.
    pub fn is_reverse(self) -> bool {
        self.0 & Self::REVERSE_BIT != 0
    }
}

impl fmt::Display for EdgeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EdgeType::FOLLOW => write!(f, "follow"),
            EdgeType::LIKE => write!(f, "like"),
            EdgeType::TRANSFER => write!(f, "transfer"),
            EdgeType(other) => write!(f, "etype#{other}"),
        }
    }
}

/// A property value. The storage engines treat property lists as opaque
/// bytes; this enum is the application-level view.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// 64-bit integer (timestamps, counters).
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl PropertyValue {
    /// Serializes to a tagged byte representation.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            PropertyValue::Int(v) => {
                let mut out = Vec::with_capacity(9);
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
                out
            }
            PropertyValue::Str(s) => {
                let mut out = Vec::with_capacity(1 + s.len());
                out.push(1);
                out.extend_from_slice(s.as_bytes());
                out
            }
            PropertyValue::Bytes(b) => {
                let mut out = Vec::with_capacity(1 + b.len());
                out.push(2);
                out.extend_from_slice(b);
                out
            }
        }
    }

    /// Parses the tagged byte representation.
    pub fn decode(bytes: &[u8]) -> Option<PropertyValue> {
        match bytes.split_first()? {
            (0, rest) => Some(PropertyValue::Int(i64::from_le_bytes(
                rest.try_into().ok()?,
            ))),
            (1, rest) => Some(PropertyValue::Str(String::from_utf8(rest.to_vec()).ok()?)),
            (2, rest) => Some(PropertyValue::Bytes(rest.to_vec())),
            _ => None,
        }
    }
}

/// A directed, typed edge with opaque properties.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Edge type.
    pub etype: EdgeType,
    /// Destination vertex.
    pub dst: VertexId,
    /// Encoded property list (e.g. the like timestamp).
    pub props: Vec<u8>,
}

impl Edge {
    /// Convenience constructor with empty properties.
    pub fn new(src: VertexId, etype: EdgeType, dst: VertexId) -> Edge {
        Edge {
            src,
            etype,
            dst,
            props: Vec::new(),
        }
    }

    /// Attaches properties.
    pub fn with_props(mut self, props: Vec<u8>) -> Edge {
        self.props = props;
        self
    }
}

/// A vertex with opaque properties.
#[derive(Debug, Clone, PartialEq)]
pub struct Vertex {
    /// Vertex identity.
    pub id: VertexId,
    /// Encoded property list.
    pub props: Vec<u8>,
}

impl Vertex {
    /// Convenience constructor with empty properties.
    pub fn new(id: VertexId) -> Vertex {
        Vertex {
            id,
            props: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VertexId(7).to_string(), "v7");
        assert_eq!(EdgeType::FOLLOW.to_string(), "follow");
        assert_eq!(EdgeType(99).to_string(), "etype#99");
    }

    #[test]
    fn reversed_marks_the_top_bit() {
        assert_eq!(EdgeType::FOLLOW.reversed(), EdgeType(0x8001));
        assert!(EdgeType::FOLLOW.reversed().is_reverse());
        assert!(!EdgeType::FOLLOW.is_reverse());
        // Idempotent.
        assert_eq!(
            EdgeType::LIKE.reversed().reversed(),
            EdgeType::LIKE.reversed()
        );
    }

    #[test]
    fn property_round_trip() {
        for p in [
            PropertyValue::Int(-42),
            PropertyValue::Str("liked_at".into()),
            PropertyValue::Bytes(vec![1, 2, 3]),
        ] {
            assert_eq!(PropertyValue::decode(&p.encode()), Some(p));
        }
    }

    #[test]
    fn property_decode_rejects_garbage() {
        assert_eq!(PropertyValue::decode(&[]), None);
        assert_eq!(PropertyValue::decode(&[9, 1, 2]), None);
        assert_eq!(PropertyValue::decode(&[0, 1, 2]), None, "short int");
    }

    #[test]
    fn edge_builders() {
        let e = Edge::new(VertexId(1), EdgeType::LIKE, VertexId(2))
            .with_props(PropertyValue::Int(123).encode());
        assert_eq!(e.src, VertexId(1));
        assert_eq!(
            PropertyValue::decode(&e.props),
            Some(PropertyValue::Int(123))
        );
    }
}
