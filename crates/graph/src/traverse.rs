//! Multi-hop traversal primitives.

use crate::model::{EdgeType, VertexId};
use crate::store::GraphStore;
use bg3_storage::StorageResult;
use std::collections::HashSet;

/// Parameters for a bounded k-hop traversal.
#[derive(Debug, Clone, Copy)]
pub struct HopSpec {
    /// Number of hops to expand (1 = direct neighbors).
    pub hops: usize,
    /// Maximum neighbors expanded per vertex per hop (fan-out cap); the
    /// risk-control workload uses "10 hops and 100 edges" style bounds.
    pub fanout: usize,
    /// Overall cap on distinct vertices returned.
    pub max_vertices: usize,
}

impl Default for HopSpec {
    fn default() -> Self {
        HopSpec {
            hops: 1,
            fanout: 100,
            max_vertices: 10_000,
        }
    }
}

/// One-hop neighbor query — the bread-and-butter operation of the Douyin
/// Follow workload.
pub fn one_hop(
    store: &dyn GraphStore,
    src: VertexId,
    etype: EdgeType,
    limit: usize,
) -> StorageResult<Vec<VertexId>> {
    Ok(store
        .neighbors(src, etype, limit)?
        .into_iter()
        .map(|(v, _)| v)
        .collect())
}

/// Breadth-first k-hop expansion returning the distinct vertices reached
/// (excluding the start), hop by hop. Used by the Douyin Recommendation
/// workload to build subgraph samples for downstream models.
pub fn k_hop_neighbors(
    store: &dyn GraphStore,
    src: VertexId,
    etype: EdgeType,
    spec: HopSpec,
) -> StorageResult<Vec<VertexId>> {
    let mut seen: HashSet<VertexId> = HashSet::new();
    seen.insert(src);
    let mut frontier = vec![src];
    let mut out = Vec::new();
    for _ in 0..spec.hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for (n, _) in store.neighbors(v, etype, spec.fanout)? {
                if seen.insert(n) {
                    out.push(n);
                    next.push(n);
                    if out.len() == spec.max_vertices {
                        return Ok(out);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memgraph::MemGraph;
    use crate::model::Edge;

    /// Builds a small layered graph:
    /// 1 -> {2,3}; 2 -> {4}; 3 -> {4,5}; 4 -> {6}; 5 -> {1} (back edge).
    fn layered() -> MemGraph {
        let g = MemGraph::new();
        for (s, d) in [(1, 2), (1, 3), (2, 4), (3, 4), (3, 5), (4, 6), (5, 1)] {
            g.insert_edge(&Edge::new(VertexId(s), EdgeType::FOLLOW, VertexId(d)))
                .unwrap();
        }
        g
    }

    #[test]
    fn one_hop_lists_direct_neighbors() {
        let g = layered();
        let n = one_hop(&g, VertexId(1), EdgeType::FOLLOW, usize::MAX).unwrap();
        assert_eq!(n, vec![VertexId(2), VertexId(3)]);
        assert_eq!(
            one_hop(&g, VertexId(1), EdgeType::FOLLOW, 1).unwrap().len(),
            1
        );
        assert!(one_hop(&g, VertexId(9), EdgeType::FOLLOW, 10)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn k_hop_deduplicates_and_excludes_start() {
        let g = layered();
        let spec = HopSpec {
            hops: 2,
            fanout: 100,
            max_vertices: 100,
        };
        let reached = k_hop_neighbors(&g, VertexId(1), EdgeType::FOLLOW, spec).unwrap();
        // Hop 1: {2,3}; hop 2: {4,5} (4 reached once despite two paths).
        assert_eq!(
            reached,
            vec![VertexId(2), VertexId(3), VertexId(4), VertexId(5)]
        );
    }

    #[test]
    fn k_hop_three_hops_follows_back_edges_without_revisits() {
        let g = layered();
        let spec = HopSpec {
            hops: 3,
            fanout: 100,
            max_vertices: 100,
        };
        let reached = k_hop_neighbors(&g, VertexId(1), EdgeType::FOLLOW, spec).unwrap();
        // Hop 3 adds 6 (via 4); the 5→1 back edge must not re-add vertex 1.
        assert_eq!(
            reached,
            vec![
                VertexId(2),
                VertexId(3),
                VertexId(4),
                VertexId(5),
                VertexId(6)
            ]
        );
    }

    #[test]
    fn fanout_cap_limits_expansion() {
        let g = MemGraph::new();
        for d in 1..=50u64 {
            g.insert_edge(&Edge::new(VertexId(0), EdgeType::FOLLOW, VertexId(d)))
                .unwrap();
        }
        let spec = HopSpec {
            hops: 1,
            fanout: 10,
            max_vertices: 1000,
        };
        assert_eq!(
            k_hop_neighbors(&g, VertexId(0), EdgeType::FOLLOW, spec)
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn max_vertices_cap_stops_early() {
        let g = layered();
        let spec = HopSpec {
            hops: 3,
            fanout: 100,
            max_vertices: 3,
        };
        assert_eq!(
            k_hop_neighbors(&g, VertexId(1), EdgeType::FOLLOW, spec)
                .unwrap()
                .len(),
            3
        );
    }
}
