//! Byte encodings that keep adjacency lists contiguous and sorted.

use crate::model::{EdgeType, VertexId};

/// The adjacency-list *group* key: `src (8B BE) ++ etype (2B BE)`. All
/// edges of one `(source, type)` pair share this group, which is what the
/// Bw-tree forest partitions on.
pub fn edge_group(src: VertexId, etype: EdgeType) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    out.extend_from_slice(&src.0.to_be_bytes());
    out.extend_from_slice(&etype.0.to_be_bytes());
    out
}

/// The *item* key within a group: `dst (8B BE)`. Big-endian keeps byte
/// order equal to numeric order, so scans return neighbors sorted by id.
pub fn edge_item(dst: VertexId) -> Vec<u8> {
    dst.0.to_be_bytes().to_vec()
}

/// Key for the vertex table.
pub fn vertex_key(id: VertexId) -> Vec<u8> {
    id.0.to_be_bytes().to_vec()
}

/// Recovers the destination vertex from an item key.
pub fn decode_dst(item: &[u8]) -> Option<VertexId> {
    Some(VertexId(u64::from_be_bytes(item.try_into().ok()?)))
}

/// Recovers `(src, etype)` from a group key.
pub fn decode_group(group: &[u8]) -> Option<(VertexId, EdgeType)> {
    if group.len() != 10 {
        return None;
    }
    let src = u64::from_be_bytes(group[..8].try_into().ok()?);
    let etype = u16::from_be_bytes(group[8..].try_into().ok()?);
    Some((VertexId(src), EdgeType(etype)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_round_trip() {
        let g = edge_group(VertexId(0xDEADBEEF), EdgeType(7));
        assert_eq!(g.len(), 10);
        assert_eq!(decode_group(&g), Some((VertexId(0xDEADBEEF), EdgeType(7))));
        assert_eq!(decode_group(&g[..9]), None);
    }

    #[test]
    fn item_round_trip() {
        let i = edge_item(VertexId(42));
        assert_eq!(decode_dst(&i), Some(VertexId(42)));
        assert_eq!(decode_dst(&[1, 2]), None);
    }

    #[test]
    fn big_endian_preserves_numeric_order() {
        assert!(edge_item(VertexId(1)) < edge_item(VertexId(2)));
        assert!(edge_item(VertexId(255)) < edge_item(VertexId(256)));
        assert!(edge_group(VertexId(1), EdgeType(9)) < edge_group(VertexId(2), EdgeType(0)));
        assert!(edge_group(VertexId(1), EdgeType(0)) < edge_group(VertexId(1), EdgeType(1)));
    }
}
