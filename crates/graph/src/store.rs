//! The storage abstraction every engine implements.

use crate::model::{Edge, EdgeType, Vertex, VertexId};
use bg3_storage::StorageResult;

/// Receives the edges of a batched frontier expansion, one visit per
/// edge, without any per-call `Vec` allocation.
///
/// `src_idx` is the index of the source vertex in the `srcs` slice passed
/// to [`GraphStore::neighbors_batch`]; within one source, edges arrive in
/// destination order. Returning `false` stops further edges of that
/// source (limit/count pushdown); other sources still run.
pub trait NeighborSink {
    /// One edge of the expansion. Returns whether to keep scanning this
    /// source's adjacency list.
    fn visit(&mut self, src_idx: usize, dst: VertexId, props: &[u8]) -> bool;
}

/// Backend-neutral property-graph storage.
///
/// Implementations in this workspace:
/// * [`crate::MemGraph`] — an in-memory reference used by tests and the
///   pattern matcher's unit tests;
/// * `bg3_core::Bg3Db` — the paper's system: a Bw-tree forest over
///   append-only shared storage;
/// * `bg3_core::ByteGraphDb` — the baseline: B-tree-style edge cache over
///   an LSM KV engine;
/// * `bg3_core::NeptuneLike` — the conventional-comparator simulation.
pub trait GraphStore: Send + Sync {
    /// Inserts (or overwrites) one directed edge.
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()>;

    /// Fetches one edge's properties, if the edge exists.
    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>>;

    /// Removes one edge (no-op if absent).
    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()>;

    /// Enumerates up to `limit` out-neighbors of `src` along `etype`,
    /// sorted by destination id.
    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>>;

    /// Out-degree of `src` along `etype`.
    fn degree(&self, src: VertexId, etype: EdgeType) -> StorageResult<usize> {
        Ok(self.neighbors(src, etype, usize::MAX)?.len())
    }

    /// Enumerates up to `per_src_limit` out-neighbors of **each** vertex
    /// in `srcs` along `etype`, streaming every edge into `sink` instead
    /// of materializing per-source `Vec`s — the frontier-batch API behind
    /// morsel-driven expansion.
    ///
    /// Within one source, edges arrive in destination order; across
    /// sources the interleaving is implementation-defined (callers
    /// address results through `src_idx`). The default implementation
    /// loops over [`GraphStore::neighbors`]; engines with a batched scan
    /// path (BG3's sorted sweep over packed CSR segments) override it so
    /// sources sharing a sealed segment scan it once.
    fn neighbors_batch(
        &self,
        srcs: &[VertexId],
        etype: EdgeType,
        per_src_limit: usize,
        sink: &mut dyn NeighborSink,
    ) -> StorageResult<()> {
        for (i, &src) in srcs.iter().enumerate() {
            for (dst, props) in self.neighbors(src, etype, per_src_limit)? {
                if !sink.visit(i, dst, &props) {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Inserts (or overwrites) a vertex.
    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()>;

    /// Fetches a vertex's properties, if present.
    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memgraph::MemGraph;

    // The trait's default `degree` is exercised through MemGraph here; the
    // engine-specific implementations get their own integration tests.
    #[test]
    fn neighbors_batch_default_matches_neighbors() {
        let g = MemGraph::new();
        for (s, d) in [(1u64, 2u64), (1, 3), (2, 3), (2, 4), (3, 1)] {
            g.insert_edge(&Edge::new(VertexId(s), EdgeType::FOLLOW, VertexId(d)))
                .unwrap();
        }
        struct Collect(Vec<Vec<VertexId>>);
        impl NeighborSink for Collect {
            fn visit(&mut self, src_idx: usize, dst: VertexId, _props: &[u8]) -> bool {
                self.0[src_idx].push(dst);
                true
            }
        }
        let srcs = [VertexId(1), VertexId(2), VertexId(3), VertexId(9)];
        let mut sink = Collect(vec![Vec::new(); srcs.len()]);
        g.neighbors_batch(&srcs, EdgeType::FOLLOW, usize::MAX, &mut sink)
            .unwrap();
        for (i, &src) in srcs.iter().enumerate() {
            let want: Vec<VertexId> = g
                .neighbors(src, EdgeType::FOLLOW, usize::MAX)
                .unwrap()
                .into_iter()
                .map(|(d, _)| d)
                .collect();
            assert_eq!(sink.0[i], want);
        }
    }

    #[test]
    fn degree_default_counts_neighbors() {
        let g = MemGraph::new();
        for dst in 1..=5u64 {
            g.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(dst)))
                .unwrap();
        }
        assert_eq!(g.degree(VertexId(1), EdgeType::FOLLOW).unwrap(), 5);
        assert_eq!(g.degree(VertexId(2), EdgeType::FOLLOW).unwrap(), 0);
    }
}
