//! The storage abstraction every engine implements.

use crate::model::{Edge, EdgeType, Vertex, VertexId};
use bg3_storage::StorageResult;

/// Backend-neutral property-graph storage.
///
/// Implementations in this workspace:
/// * [`crate::MemGraph`] — an in-memory reference used by tests and the
///   pattern matcher's unit tests;
/// * `bg3_core::Bg3Db` — the paper's system: a Bw-tree forest over
///   append-only shared storage;
/// * `bg3_core::ByteGraphDb` — the baseline: B-tree-style edge cache over
///   an LSM KV engine;
/// * `bg3_core::NeptuneLike` — the conventional-comparator simulation.
pub trait GraphStore: Send + Sync {
    /// Inserts (or overwrites) one directed edge.
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()>;

    /// Fetches one edge's properties, if the edge exists.
    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>>;

    /// Removes one edge (no-op if absent).
    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()>;

    /// Enumerates up to `limit` out-neighbors of `src` along `etype`,
    /// sorted by destination id.
    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>>;

    /// Out-degree of `src` along `etype`.
    fn degree(&self, src: VertexId, etype: EdgeType) -> StorageResult<usize> {
        Ok(self.neighbors(src, etype, usize::MAX)?.len())
    }

    /// Inserts (or overwrites) a vertex.
    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()>;

    /// Fetches a vertex's properties, if present.
    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memgraph::MemGraph;

    // The trait's default `degree` is exercised through MemGraph here; the
    // engine-specific implementations get their own integration tests.
    #[test]
    fn degree_default_counts_neighbors() {
        let g = MemGraph::new();
        for dst in 1..=5u64 {
            g.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(dst)))
                .unwrap();
        }
        assert_eq!(g.degree(VertexId(1), EdgeType::FOLLOW).unwrap(), 5);
        assert_eq!(g.degree(VertexId(2), EdgeType::FOLLOW).unwrap(), 0);
    }
}
