//! Graph analysis algorithms over any [`GraphStore`].
//!
//! The paper's motivation (§1) is that ByteDance increasingly runs
//! "large-scale graph analysis and learning algorithms" on these stores —
//! e-commerce risk control, content recommendation. This module provides
//! the classic analysis kernels those pipelines start from, implemented
//! against the storage abstraction so they run unchanged on BG3, the
//! ByteGraph baseline, or the in-memory oracle. All of them take explicit
//! resource bounds: production graphs have super-vertices, and an analysis
//! pass must degrade gracefully rather than melt a node.

use crate::model::{EdgeType, VertexId};
use crate::store::GraphStore;
use bg3_storage::StorageResult;
use std::collections::{HashMap, HashSet, VecDeque};

/// Counts triangles (directed 3-cycles `a→b→c→a` and transitive wedges
/// `a→b→c` with `a→c`) incident to `seeds`, deduplicated by vertex triple.
///
/// `fanout` caps neighbors per vertex. Returns the number of distinct
/// triangles found.
pub fn triangle_count(
    store: &dyn GraphStore,
    etype: EdgeType,
    seeds: &[VertexId],
    fanout: usize,
) -> StorageResult<usize> {
    let mut triangles: HashSet<[u64; 3]> = HashSet::new();
    for &a in seeds {
        let nbrs_a: Vec<VertexId> = store
            .neighbors(a, etype, fanout)?
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let set_a: HashSet<VertexId> = nbrs_a.iter().copied().collect();
        for &b in &nbrs_a {
            if b == a {
                continue;
            }
            for (c, _) in store.neighbors(b, etype, fanout)? {
                if c == a || c == b {
                    continue;
                }
                // Triangle if a also reaches c directly (wedge closure) or
                // c closes back to a (directed cycle).
                let closes = set_a.contains(&c) || store.get_edge(c, etype, a)?.is_some();
                if closes {
                    let mut key = [a.0, b.0, c.0];
                    key.sort_unstable();
                    triangles.insert(key);
                }
            }
        }
    }
    Ok(triangles.len())
}

/// Weakly connected components over the subgraph reachable from `seeds`,
/// treating edges as undirected (requires the reverse index for true
/// undirected semantics; without it, only forward edges connect).
///
/// Returns a map from vertex to component representative (smallest vertex
/// id in the component). Exploration stops after `max_vertices`.
pub fn weakly_connected_components(
    store: &dyn GraphStore,
    etypes: &[EdgeType],
    seeds: &[VertexId],
    fanout: usize,
    max_vertices: usize,
) -> StorageResult<HashMap<VertexId, VertexId>> {
    let mut component: HashMap<VertexId, VertexId> = HashMap::new();
    for &seed in seeds {
        if component.contains_key(&seed) {
            continue;
        }
        // BFS to collect this component.
        let mut members = Vec::new();
        let mut queue = VecDeque::from([seed]);
        let mut seen: HashSet<VertexId> = HashSet::from([seed]);
        while let Some(v) = queue.pop_front() {
            members.push(v);
            if component.len() + members.len() >= max_vertices {
                break;
            }
            for &etype in etypes {
                for (n, _) in store.neighbors(v, etype, fanout)? {
                    if seen.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
        }
        // A previously-found component may already own some members (the
        // seed reached it); merge under the smaller representative.
        let rep = members
            .iter()
            .map(|m| component.get(m).copied().unwrap_or(*m))
            .min()
            .expect("component has at least the seed");
        for m in members {
            component.insert(m, rep);
        }
    }
    Ok(component)
}

/// Bounded personalized PageRank by power iteration over the subgraph
/// reachable from `seeds` within `max_vertices`.
///
/// Returns `(vertex, score)` pairs sorted by descending score — the shape a
/// recommendation candidate-generation stage consumes.
pub fn pagerank(
    store: &dyn GraphStore,
    etype: EdgeType,
    seeds: &[VertexId],
    fanout: usize,
    max_vertices: usize,
    iterations: usize,
    damping: f64,
) -> StorageResult<Vec<(VertexId, f64)>> {
    // Materialize the bounded subgraph first (analysis passes snapshot).
    let mut vertices: Vec<VertexId> = Vec::new();
    let mut seen: HashSet<VertexId> = HashSet::new();
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    for &s in seeds {
        if seen.insert(s) {
            queue.push_back(s);
        }
    }
    let mut adjacency: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    while let Some(v) = queue.pop_front() {
        vertices.push(v);
        let nbrs: Vec<VertexId> = store
            .neighbors(v, etype, fanout)?
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        for &n in &nbrs {
            if vertices.len() + queue.len() < max_vertices && seen.insert(n) {
                queue.push_back(n);
            }
        }
        adjacency.insert(v, nbrs);
    }
    if vertices.is_empty() {
        return Ok(Vec::new());
    }

    let n = vertices.len() as f64;
    let mut rank: HashMap<VertexId, f64> = vertices.iter().map(|&v| (v, 1.0 / n)).collect();
    for _ in 0..iterations {
        let mut next: HashMap<VertexId, f64> =
            vertices.iter().map(|&v| (v, (1.0 - damping) / n)).collect();
        for &v in &vertices {
            let out = &adjacency[&v];
            // Dangling mass and edges leaving the bounded subgraph are
            // redistributed uniformly.
            let inside: Vec<VertexId> = out
                .iter()
                .copied()
                .filter(|t| rank.contains_key(t))
                .collect();
            let share = damping * rank[&v];
            if inside.is_empty() {
                for r in next.values_mut() {
                    *r += share / n;
                }
            } else {
                let per_edge = share / inside.len() as f64;
                for t in inside {
                    *next.get_mut(&t).expect("subgraph member") += per_edge;
                }
            }
        }
        rank = next;
    }
    let mut out: Vec<(VertexId, f64)> = rank.into_iter().collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memgraph::MemGraph;
    use crate::model::Edge;

    fn graph(edges: &[(u64, u64)]) -> MemGraph {
        let g = MemGraph::new();
        for &(s, d) in edges {
            g.insert_edge(&Edge::new(VertexId(s), EdgeType::FOLLOW, VertexId(d)))
                .unwrap();
        }
        g
    }

    #[test]
    fn counts_cycle_and_wedge_triangles() {
        // Cycle triangle 1→2→3→1 and closed wedge 1→4, 4→5, 1→5.
        let g = graph(&[(1, 2), (2, 3), (3, 1), (1, 4), (4, 5), (1, 5)]);
        let seeds: Vec<VertexId> = (1..=5).map(VertexId).collect();
        let n = triangle_count(&g, EdgeType::FOLLOW, &seeds, 100).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn triangle_count_dedups_across_seeds() {
        let g = graph(&[(1, 2), (2, 3), (3, 1)]);
        // All three rotations find the same triangle once.
        let n = triangle_count(
            &g,
            EdgeType::FOLLOW,
            &[VertexId(1), VertexId(2), VertexId(3)],
            100,
        )
        .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn no_triangles_in_a_tree() {
        let g = graph(&[(1, 2), (1, 3), (2, 4), (2, 5)]);
        let seeds: Vec<VertexId> = (1..=5).map(VertexId).collect();
        assert_eq!(
            triangle_count(&g, EdgeType::FOLLOW, &seeds, 100).unwrap(),
            0
        );
    }

    #[test]
    fn wcc_separates_islands() {
        let g = graph(&[(1, 2), (2, 3), (10, 11), (20, 21)]);
        let comp = weakly_connected_components(
            &g,
            &[EdgeType::FOLLOW],
            &[VertexId(1), VertexId(10), VertexId(20), VertexId(99)],
            100,
            1000,
        )
        .unwrap();
        assert_eq!(comp[&VertexId(1)], comp[&VertexId(3)]);
        assert_eq!(comp[&VertexId(10)], comp[&VertexId(11)]);
        assert_ne!(comp[&VertexId(1)], comp[&VertexId(10)]);
        assert_ne!(comp[&VertexId(10)], comp[&VertexId(20)]);
        assert_eq!(comp[&VertexId(99)], VertexId(99), "isolated vertex");
    }

    #[test]
    fn wcc_representative_is_smallest_member() {
        let g = graph(&[(5, 3), (3, 7)]);
        let comp = weakly_connected_components(&g, &[EdgeType::FOLLOW], &[VertexId(5)], 100, 1000)
            .unwrap();
        assert_eq!(comp[&VertexId(5)], VertexId(3));
        assert_eq!(comp[&VertexId(7)], VertexId(3));
    }

    #[test]
    fn pagerank_ranks_the_hub_highest() {
        // Everyone points at 1; 1 points at 2.
        let g = graph(&[(3, 1), (4, 1), (5, 1), (1, 2)]);
        let ranks = pagerank(
            &g,
            EdgeType::FOLLOW,
            &[VertexId(3), VertexId(4), VertexId(5)],
            100,
            1000,
            20,
            0.85,
        )
        .unwrap();
        // The hub (1) and its sink (2, which receives all of the hub's
        // mass) outrank the leaf followers.
        let score = |v: u64| {
            ranks
                .iter()
                .find(|(id, _)| *id == VertexId(v))
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert!(score(1) > score(3), "hub above followers: {ranks:?}");
        assert!(score(2) > score(3), "sink above followers: {ranks:?}");
        // Scores form a probability distribution.
        let total: f64 = ranks.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-6, "mass conserved: {total}");
    }

    #[test]
    fn pagerank_of_empty_seed_set_is_empty() {
        let g = graph(&[(1, 2)]);
        assert!(pagerank(&g, EdgeType::FOLLOW, &[], 10, 10, 5, 0.85)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn bounds_are_respected() {
        // A long chain: max_vertices truncates exploration.
        let edges: Vec<(u64, u64)> = (0..100).map(|i| (i, i + 1)).collect();
        let g = graph(&edges);
        let comp =
            weakly_connected_components(&g, &[EdgeType::FOLLOW], &[VertexId(0)], 100, 10).unwrap();
        assert!(comp.len() <= 11, "bounded exploration: {}", comp.len());
        let ranks = pagerank(&g, EdgeType::FOLLOW, &[VertexId(0)], 100, 10, 5, 0.85).unwrap();
        assert!(ranks.len() <= 10);
    }
}
