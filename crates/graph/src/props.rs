//! Typed, named property lists.
//!
//! §2.2: "the value comprises a list of associated properties". The storage
//! engines treat that list as opaque bytes; this codec gives applications a
//! schema-light typed view: an ordered list of `(name, value)` pairs with a
//! compact binary form.

use crate::model::PropertyValue;

/// An ordered list of named properties.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PropertyList {
    entries: Vec<(String, PropertyValue)>,
}

impl PropertyList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style append.
    pub fn with(mut self, name: impl Into<String>, value: PropertyValue) -> Self {
        self.set(name, value);
        self
    }

    /// Sets (or replaces) a property.
    pub fn set(&mut self, name: impl Into<String>, value: PropertyValue) {
        let name = name.into();
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.entries.push((name, value)),
        }
    }

    /// Looks a property up by name.
    pub fn get(&self, name: &str) -> Option<&PropertyValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no properties are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PropertyValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Serializes to the compact binary form:
    /// `u16 count | (u16 name_len, name, u32 val_len, tagged-value)*`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.entries.len() * 16);
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for (name, value) in &self.entries {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            let encoded = value.encode();
            out.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
            out.extend_from_slice(&encoded);
        }
        out
    }

    /// Parses the binary form. Returns `None` on any malformation.
    pub fn decode(buf: &[u8]) -> Option<PropertyList> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            if buf.len() - *pos < n {
                return None;
            }
            let out = &buf[*pos..*pos + n];
            *pos += n;
            Some(out)
        };
        let count = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let mut entries = Vec::with_capacity(count.min(256));
        for _ in 0..count {
            let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).ok()?;
            let val_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            let value = PropertyValue::decode(take(&mut pos, val_len)?)?;
            entries.push((name, value));
        }
        (pos == buf.len()).then_some(PropertyList { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PropertyList {
        PropertyList::new()
            .with("liked_at", PropertyValue::Int(1_700_000_000))
            .with("source", PropertyValue::Str("feed".into()))
            .with("raw", PropertyValue::Bytes(vec![1, 2, 3]))
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let decoded = PropertyList::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(
            decoded.get("liked_at"),
            Some(&PropertyValue::Int(1_700_000_000))
        );
        assert_eq!(decoded.get("missing"), None);
    }

    #[test]
    fn empty_list_round_trips() {
        let p = PropertyList::new();
        assert!(p.is_empty());
        assert_eq!(PropertyList::decode(&p.encode()), Some(p));
    }

    #[test]
    fn set_replaces_in_place_preserving_order() {
        let mut p = sample();
        p.set("source", PropertyValue::Str("search".into()));
        assert_eq!(p.len(), 3);
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["liked_at", "source", "raw"]);
        assert_eq!(p.get("source"), Some(&PropertyValue::Str("search".into())));
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let encoded = sample().encode();
        for cut in 1..encoded.len() {
            assert!(
                PropertyList::decode(&encoded[..cut]).is_none(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut encoded = sample().encode();
        encoded.push(0);
        assert!(PropertyList::decode(&encoded).is_none());
    }
}
