//! # bg3-graph
//!
//! The property-graph layer shared by every engine in this workspace
//! (§2.2 of the BG3 paper): vertices and edges carry types and properties;
//! edges are grouped into adjacency lists per `(source, edge-type)` and
//! stored through a pluggable [`GraphStore`] backend.
//!
//! On top of the storage abstraction the crate provides the query
//! primitives the paper's workloads exercise (Table 1):
//!
//! * one-hop neighbor enumeration (Douyin Follow),
//! * multi-hop traversal with per-hop fan-out limits (Douyin
//!   Recommendation: 70% 1-hop / 20% 2-hop / 10% 3-hop),
//! * subgraph pattern matching and cycle detection (Financial Risk
//!   Control; the paper cites an in-memory subgraph-matching study [32]).
//!
//! Key encoding keeps adjacency lists contiguous: the *group* is
//! `src ++ edge_type` and the *item* is `dst`, both big-endian so byte
//! order equals numeric order.

pub mod algo;
pub mod encode;
pub mod memgraph;
pub mod model;
pub mod pattern;
pub mod props;
pub mod store;
pub mod traverse;

pub use algo::{pagerank, triangle_count, weakly_connected_components};
pub use encode::{decode_dst, decode_group, edge_group, edge_item, vertex_key};
pub use memgraph::MemGraph;
pub use model::{Edge, EdgeType, PropertyValue, Vertex, VertexId};
pub use pattern::{CycleQuery, Pattern, PatternEdge, PatternMatcher};
pub use props::PropertyList;
pub use store::{GraphStore, NeighborSink};
pub use traverse::{k_hop_neighbors, one_hop, HopSpec};
