//! In-memory reference implementation of [`GraphStore`].

use crate::model::{Edge, EdgeType, Vertex, VertexId};
use crate::store::GraphStore;
use bg3_storage::StorageResult;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A plain in-memory graph: the semantics oracle the storage-backed engines
/// are tested against, and the substrate for pattern-matcher unit tests.
#[derive(Debug, Default)]
pub struct MemGraph {
    edges: RwLock<BTreeMap<(VertexId, EdgeType, VertexId), Vec<u8>>>,
    vertices: RwLock<BTreeMap<VertexId, Vec<u8>>>,
}

impl MemGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.read().len()
    }

    /// Total vertex count (vertex table only; edge endpoints are implicit).
    pub fn vertex_count(&self) -> usize {
        self.vertices.read().len()
    }
}

impl GraphStore for MemGraph {
    fn insert_edge(&self, edge: &Edge) -> StorageResult<()> {
        self.edges
            .write()
            .insert((edge.src, edge.etype, edge.dst), edge.props.clone());
        Ok(())
    }

    fn get_edge(
        &self,
        src: VertexId,
        etype: EdgeType,
        dst: VertexId,
    ) -> StorageResult<Option<Vec<u8>>> {
        Ok(self.edges.read().get(&(src, etype, dst)).cloned())
    }

    fn delete_edge(&self, src: VertexId, etype: EdgeType, dst: VertexId) -> StorageResult<()> {
        self.edges.write().remove(&(src, etype, dst));
        Ok(())
    }

    fn neighbors(
        &self,
        src: VertexId,
        etype: EdgeType,
        limit: usize,
    ) -> StorageResult<Vec<(VertexId, Vec<u8>)>> {
        let edges = self.edges.read();
        Ok(edges
            .range((src, etype, VertexId(0))..=(src, etype, VertexId(u64::MAX)))
            .take(limit)
            .map(|((_, _, dst), props)| (*dst, props.clone()))
            .collect())
    }

    fn insert_vertex(&self, vertex: &Vertex) -> StorageResult<()> {
        self.vertices
            .write()
            .insert(vertex.id, vertex.props.clone());
        Ok(())
    }

    fn get_vertex(&self, id: VertexId) -> StorageResult<Option<Vec<u8>>> {
        Ok(self.vertices.read().get(&id).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_crud() {
        let g = MemGraph::new();
        let e = Edge::new(VertexId(1), EdgeType::LIKE, VertexId(2)).with_props(b"t=9".to_vec());
        g.insert_edge(&e).unwrap();
        assert_eq!(
            g.get_edge(VertexId(1), EdgeType::LIKE, VertexId(2))
                .unwrap(),
            Some(b"t=9".to_vec())
        );
        assert_eq!(
            g.get_edge(VertexId(1), EdgeType::FOLLOW, VertexId(2))
                .unwrap(),
            None,
            "types are distinct"
        );
        g.delete_edge(VertexId(1), EdgeType::LIKE, VertexId(2))
            .unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn neighbors_sorted_and_limited() {
        let g = MemGraph::new();
        for dst in [5u64, 1, 9, 3] {
            g.insert_edge(&Edge::new(VertexId(7), EdgeType::FOLLOW, VertexId(dst)))
                .unwrap();
        }
        // An edge of a different source/type must not leak in.
        g.insert_edge(&Edge::new(VertexId(8), EdgeType::FOLLOW, VertexId(2)))
            .unwrap();
        g.insert_edge(&Edge::new(VertexId(7), EdgeType::LIKE, VertexId(2)))
            .unwrap();
        let n: Vec<u64> = g
            .neighbors(VertexId(7), EdgeType::FOLLOW, usize::MAX)
            .unwrap()
            .into_iter()
            .map(|(v, _)| v.0)
            .collect();
        assert_eq!(n, vec![1, 3, 5, 9]);
        assert_eq!(
            g.neighbors(VertexId(7), EdgeType::FOLLOW, 2).unwrap().len(),
            2
        );
    }

    #[test]
    fn vertex_crud() {
        let g = MemGraph::new();
        g.insert_vertex(&Vertex {
            id: VertexId(3),
            props: b"name=alice".to_vec(),
        })
        .unwrap();
        assert_eq!(
            g.get_vertex(VertexId(3)).unwrap(),
            Some(b"name=alice".to_vec())
        );
        assert_eq!(g.get_vertex(VertexId(4)).unwrap(), None);
        assert_eq!(g.vertex_count(), 1);
    }
}
