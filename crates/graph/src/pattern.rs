//! Subgraph pattern matching and cycle detection.
//!
//! The Financial Risk Control workload (Table 1) runs subgraph pattern
//! matching over a stream of freshly inserted transfer edges; the paper's
//! motivating example is loop detection for anti-money-laundering (§2.6).
//! The matcher is a classic DFS backtracking enumerator with injective
//! variable assignment and per-step candidate caps — the in-memory
//! algorithmic skeleton of the study the paper cites [Sun & Luo, 2020].

use crate::model::{EdgeType, VertexId};
use crate::store::GraphStore;
use bg3_storage::StorageResult;

/// One edge of the pattern between variable indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternEdge {
    /// Source variable (index into the assignment vector).
    pub from: usize,
    /// Destination variable.
    pub to: usize,
    /// Required edge type.
    pub etype: EdgeType,
}

/// A connected pattern anchored at variable 0.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Number of variables; variable 0 is bound to the query anchor.
    pub vars: usize,
    /// Pattern edges. The pattern must be connected when explored from
    /// variable 0 following edge direction.
    pub edges: Vec<PatternEdge>,
}

impl Pattern {
    /// A directed path `0 -> 1 -> ... -> len` of `len` edges.
    pub fn path(len: usize, etype: EdgeType) -> Pattern {
        Pattern {
            vars: len + 1,
            edges: (0..len)
                .map(|i| PatternEdge {
                    from: i,
                    to: i + 1,
                    etype,
                })
                .collect(),
        }
    }

    /// A directed cycle of `len` edges through the anchor:
    /// `0 -> 1 -> ... -> len-1 -> 0`.
    pub fn cycle(len: usize, etype: EdgeType) -> Pattern {
        assert!(len >= 2, "a cycle needs at least 2 edges");
        let mut edges: Vec<PatternEdge> = (0..len - 1)
            .map(|i| PatternEdge {
                from: i,
                to: i + 1,
                etype,
            })
            .collect();
        edges.push(PatternEdge {
            from: len - 1,
            to: 0,
            etype,
        });
        Pattern { vars: len, edges }
    }

    /// Orders edges so every edge's `from` variable is assigned before the
    /// edge is processed. Returns `None` if the pattern is not reachable
    /// from variable 0 along edge direction.
    fn exploration_order(&self) -> Option<Vec<PatternEdge>> {
        let mut assigned = vec![false; self.vars];
        assigned[0] = true;
        let mut remaining = self.edges.clone();
        let mut ordered = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let idx = remaining.iter().position(|e| assigned[e.from])?;
            let edge = remaining.remove(idx);
            assigned[edge.to] = true;
            ordered.push(edge);
        }
        assigned.iter().all(|&a| a).then_some(ordered)
    }
}

/// Cycle-detection query: does a transfer loop of `length` edges pass
/// through the anchor vertex? This is the anti-money-laundering primitive.
#[derive(Debug, Clone, Copy)]
pub struct CycleQuery {
    /// Edge type the cycle must follow.
    pub etype: EdgeType,
    /// Cycle length in edges.
    pub length: usize,
}

/// DFS backtracking matcher with resource caps.
#[derive(Debug, Clone, Copy)]
pub struct PatternMatcher {
    /// Neighbors considered per expansion step (keeps super-vertices from
    /// exploding the search).
    pub candidate_cap: usize,
    /// Stop after this many matches.
    pub max_matches: usize,
    /// Total DFS expansions allowed before the search gives up — the
    /// latency bound a real-time risk-control service enforces. Deep
    /// patterns (the paper's 10-hop cycles) are exponential without it.
    pub max_expansions: usize,
}

impl Default for PatternMatcher {
    fn default() -> Self {
        PatternMatcher {
            candidate_cap: 100,
            max_matches: 64,
            max_expansions: 100_000,
        }
    }
}

impl PatternMatcher {
    /// Enumerates matches of `pattern` with variable 0 bound to `anchor`.
    /// Each match is one vertex assignment per variable, all distinct.
    pub fn find(
        &self,
        store: &dyn GraphStore,
        pattern: &Pattern,
        anchor: VertexId,
    ) -> StorageResult<Vec<Vec<VertexId>>> {
        let Some(order) = pattern.exploration_order() else {
            return Ok(Vec::new());
        };
        let mut assignment: Vec<Option<VertexId>> = vec![None; pattern.vars];
        assignment[0] = Some(anchor);
        let mut matches = Vec::new();
        let mut budget = self.max_expansions;
        self.dfs(store, &order, 0, &mut assignment, &mut matches, &mut budget)?;
        Ok(matches)
    }

    /// True if at least one cycle of `query.length` passes through `anchor`.
    pub fn has_cycle(
        &self,
        store: &dyn GraphStore,
        query: CycleQuery,
        anchor: VertexId,
    ) -> StorageResult<bool> {
        let pattern = Pattern::cycle(query.length, query.etype);
        let limited = PatternMatcher {
            max_matches: 1,
            ..*self
        };
        Ok(!limited.find(store, &pattern, anchor)?.is_empty())
    }

    fn dfs(
        &self,
        store: &dyn GraphStore,
        order: &[PatternEdge],
        depth: usize,
        assignment: &mut Vec<Option<VertexId>>,
        matches: &mut Vec<Vec<VertexId>>,
        budget: &mut usize,
    ) -> StorageResult<()> {
        if matches.len() >= self.max_matches || *budget == 0 {
            return Ok(());
        }
        if depth == order.len() {
            matches.push(assignment.iter().map(|v| v.unwrap()).collect());
            return Ok(());
        }
        let edge = order[depth];
        let from = assignment[edge.from].expect("exploration order guarantees");
        match assignment[edge.to] {
            Some(to) => {
                *budget = budget.saturating_sub(1);
                // Both endpoints bound: just verify the edge exists.
                if store.get_edge(from, edge.etype, to)?.is_some() {
                    self.dfs(store, order, depth + 1, assignment, matches, budget)?;
                }
            }
            None => {
                for (candidate, _) in store.neighbors(from, edge.etype, self.candidate_cap)? {
                    // Injective assignment: a match uses distinct vertices.
                    if assignment.contains(&Some(candidate)) {
                        continue;
                    }
                    *budget = budget.saturating_sub(1);
                    assignment[edge.to] = Some(candidate);
                    self.dfs(store, order, depth + 1, assignment, matches, budget)?;
                    assignment[edge.to] = None;
                    if matches.len() >= self.max_matches || *budget == 0 {
                        break;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memgraph::MemGraph;
    use crate::model::Edge;

    fn graph(edges: &[(u64, u64)]) -> MemGraph {
        let g = MemGraph::new();
        for &(s, d) in edges {
            g.insert_edge(&Edge::new(VertexId(s), EdgeType::TRANSFER, VertexId(d)))
                .unwrap();
        }
        g
    }

    #[test]
    fn path_pattern_enumerates_paths() {
        let g = graph(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        let m = PatternMatcher::default();
        let found = m
            .find(&g, &Pattern::path(2, EdgeType::TRANSFER), VertexId(1))
            .unwrap();
        // 1->2->4 and 1->3->4.
        assert_eq!(found.len(), 2);
        assert!(found.contains(&vec![VertexId(1), VertexId(2), VertexId(4)]));
        assert!(found.contains(&vec![VertexId(1), VertexId(3), VertexId(4)]));
    }

    #[test]
    fn cycle_detection_finds_money_loop() {
        // 1 -> 2 -> 3 -> 1 is a 3-cycle; 4 hangs off to the side.
        let g = graph(&[(1, 2), (2, 3), (3, 1), (3, 4)]);
        let m = PatternMatcher::default();
        let q = CycleQuery {
            etype: EdgeType::TRANSFER,
            length: 3,
        };
        assert!(m.has_cycle(&g, q, VertexId(1)).unwrap());
        assert!(!m
            .has_cycle(&g, CycleQuery { length: 4, ..q }, VertexId(1))
            .unwrap());
        assert!(
            !m.has_cycle(&g, q, VertexId(4)).unwrap(),
            "4 is not on a loop"
        );
    }

    #[test]
    fn two_cycle_requires_reciprocal_edges() {
        let g = graph(&[(1, 2), (2, 1), (1, 3)]);
        let m = PatternMatcher::default();
        let q = CycleQuery {
            etype: EdgeType::TRANSFER,
            length: 2,
        };
        assert!(m.has_cycle(&g, q, VertexId(1)).unwrap());
        assert!(!m.has_cycle(&g, q, VertexId(3)).unwrap());
    }

    #[test]
    fn matches_are_injective() {
        // 1 -> 2 -> 1 -> 2... a 3-path exists only by revisiting; with
        // injective semantics the only 3-path match must use 3 distinct
        // vertices, which this graph lacks.
        let g = graph(&[(1, 2), (2, 1)]);
        let m = PatternMatcher::default();
        let found = m
            .find(&g, &Pattern::path(3, EdgeType::TRANSFER), VertexId(1))
            .unwrap();
        assert!(found.is_empty());
    }

    #[test]
    fn disconnected_pattern_yields_nothing() {
        let g = graph(&[(1, 2)]);
        let pattern = Pattern {
            vars: 3,
            edges: vec![PatternEdge {
                from: 1,
                to: 2,
                etype: EdgeType::TRANSFER,
            }],
        };
        // Variable 1 is never reachable from the anchor: unmatched.
        assert!(PatternMatcher::default()
            .find(&g, &pattern, VertexId(1))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn max_matches_caps_enumeration() {
        let mut edges = Vec::new();
        for d in 2..=20u64 {
            edges.push((1, d));
        }
        let g = graph(&edges);
        let m = PatternMatcher {
            candidate_cap: 100,
            max_matches: 5,
            ..PatternMatcher::default()
        };
        let found = m
            .find(&g, &Pattern::path(1, EdgeType::TRANSFER), VertexId(1))
            .unwrap();
        assert_eq!(found.len(), 5);
    }

    #[test]
    fn candidate_cap_bounds_super_vertices() {
        let mut edges = Vec::new();
        for d in 2..=200u64 {
            edges.push((1, d));
        }
        let g = graph(&edges);
        let m = PatternMatcher {
            candidate_cap: 10,
            max_matches: 1000,
            ..PatternMatcher::default()
        };
        let found = m
            .find(&g, &Pattern::path(1, EdgeType::TRANSFER), VertexId(1))
            .unwrap();
        assert_eq!(found.len(), 10, "only the capped candidates explored");
    }
}
