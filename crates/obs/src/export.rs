//! Renderers: Prometheus text, per-experiment summary lines, and the
//! report-walking collectors the bench harness uses.
//!
//! The summary-line formatters used to live (hand-rolled, per experiment)
//! in `reproduce.rs`; they are centralized here so every experiment
//! renders identically.

use crate::hist::HistogramSnapshot;
use crate::names;
use crate::registry::MetricsSnapshot;
use crate::value::ValueExt;
use serde_json::Value;

/// Formats virtual-time nanoseconds for humans (`840ns`, `3.4µs`,
/// `1.25ms`, `2.100s`).
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}s", nanos as f64 / 1e9)
    }
}

/// One `p50 … p95 … p99 … max … (n=…)` fragment for a histogram.
pub fn percentile_line(hist: &HistogramSnapshot) -> String {
    format!(
        "p50 {}  p95 {}  p99 {}  max {}  (n={})",
        fmt_nanos(hist.value_at_quantile(0.50)),
        fmt_nanos(hist.value_at_quantile(0.95)),
        fmt_nanos(hist.value_at_quantile(0.99)),
        fmt_nanos(hist.max_nanos),
        hist.count,
    )
}

/// Per-experiment latency lines, one per operation. The four headline
/// operations (storage reads, appends, WAL flushes, GC moves) are always
/// present — `n=0` when the experiment never exercised them — and any
/// other histogram with samples is appended after them.
pub fn latency_lines(metrics: &MetricsSnapshot) -> Vec<String> {
    let required = [
        names::STORAGE_READ_LATENCY_NS,
        names::STORAGE_APPEND_LATENCY_NS,
        names::WAL_FLUSH_LATENCY_NS,
        names::GC_MOVE_LATENCY_NS,
    ];
    let empty = HistogramSnapshot::default();
    let mut lines = Vec::new();
    for name in required {
        let hist = metrics.histogram(name).unwrap_or(&empty);
        lines.push(latency_line(name, hist));
    }
    for sample in &metrics.histograms {
        if !required.contains(&sample.name.as_str()) && sample.histogram.count > 0 {
            lines.push(latency_line(&sample.name, &sample.histogram));
        }
    }
    lines
}

fn latency_line(metric_name: &str, hist: &HistogramSnapshot) -> String {
    let op = metric_name
        .strip_suffix("_latency_ns")
        .unwrap_or(metric_name);
    // An empty histogram would render `p50 0ns … max 0ns`, which reads as
    // a real (and implausibly fast) measurement; mark it unexercised.
    if hist.count == 0 {
        return format!("latency {op}: no samples (n=0)");
    }
    format!("latency {op}: {}", percentile_line(hist))
}

/// All summary lines for one experiment report: cache, fencing, and
/// latency. This is the single formatter every experiment goes through.
pub fn experiment_summary(report: &Value) -> Vec<String> {
    let mut lines = Vec::new();
    if let Some(line) = cache_summary(report) {
        lines.push(format!("cache: {line}"));
    }
    if let Some(line) = fencing_summary(report) {
        lines.push(format!("fencing: {line}"));
    }
    let metrics = collect_metrics(report).unwrap_or_default();
    lines.extend(latency_lines(&metrics));
    lines
}

/// Walks a serialized report and merges every embedded
/// [`MetricsSnapshot`] (objects with the `counters`/`gauges`/`histograms`
/// contract) into one. `None` when the report embeds no metrics.
pub fn collect_metrics(value: &Value) -> Option<MetricsSnapshot> {
    fn walk(value: &Value, acc: &mut MetricsSnapshot, seen: &mut bool) {
        if let Some(snap) = MetricsSnapshot::from_value(value) {
            *seen = true;
            acc.merge(&snap);
            return; // don't descend into the snapshot's own sample lists
        }
        match value {
            Value::Object(map) => {
                for (_, v) in map.iter() {
                    walk(v, acc, seen);
                }
            }
            Value::Array(items) => {
                for v in items {
                    walk(v, acc, seen);
                }
            }
            _ => {}
        }
    }
    let mut acc = MetricsSnapshot::default();
    let mut seen = false;
    walk(value, &mut acc, &mut seen);
    seen.then_some(acc)
}

/// Sums every embedded `IoSummary` in a report (objects carrying the
/// `cache_hits`/`cache_misses` contract) into one per-experiment cache
/// line. `None` when the report embeds no cache accounting.
pub fn cache_summary(value: &Value) -> Option<String> {
    fn walk(value: &Value, acc: &mut [u64; 4], seen: &mut bool) {
        match value {
            Value::Object(map) => {
                if let (Some(hits), Some(misses)) = (
                    map.get("cache_hits").and_then(ValueExt::as_u64),
                    map.get("cache_misses").and_then(ValueExt::as_u64),
                ) {
                    *seen = true;
                    acc[0] += hits;
                    acc[1] += misses;
                    acc[2] += map
                        .get("cache_evictions")
                        .and_then(ValueExt::as_u64)
                        .unwrap_or(0);
                    acc[3] += map
                        .get("random_reads")
                        .and_then(ValueExt::as_u64)
                        .unwrap_or(0);
                }
                for (_, v) in map.iter() {
                    walk(v, acc, seen);
                }
            }
            Value::Array(items) => {
                for v in items {
                    walk(v, acc, seen);
                }
            }
            _ => {}
        }
    }
    let mut acc = [0u64; 4];
    let mut seen = false;
    walk(value, &mut acc, &mut seen);
    if !seen {
        return None;
    }
    let [hits, misses, evictions, random_reads] = acc;
    let logical = hits + random_reads;
    // Guard: a cold start with zero logical reads is neutral (1.0), not a
    // division by zero.
    let amp = if logical == 0 {
        1.0
    } else {
        random_reads as f64 / logical as f64
    };
    Some(format!(
        "hits {hits}  misses {misses}  evictions {evictions}  storage reads {random_reads}  read-amp {amp:.2}"
    ))
}

/// Walks a report for embedded epoch-fence counters (objects carrying the
/// `seals`/`rejected_publishes`/`rejected_appends` contract, i.e. a
/// serialized `EpochFenceSnapshot`) plus the failover counters that ride
/// beside them, and folds them into one `fencing:` line. `None` when the
/// report embeds no fence accounting.
pub fn fencing_summary(value: &Value) -> Option<String> {
    fn walk(value: &Value, acc: &mut [u64; 5], seen: &mut bool) {
        match value {
            Value::Object(map) => {
                if let (Some(seals), Some(pubs), Some(appends)) = (
                    map.get("seals").and_then(ValueExt::as_u64),
                    map.get("rejected_publishes").and_then(ValueExt::as_u64),
                    map.get("rejected_appends").and_then(ValueExt::as_u64),
                ) {
                    *seen = true;
                    acc[0] += seals;
                    acc[1] += pubs;
                    acc[2] += appends;
                }
                // Failover counters ride beside the fence in a stats
                // snapshot; per-cycle rows carry only one of the pair, so
                // requiring both avoids double-counting them.
                if let (Some(replays), Some(stale)) = (
                    map.get("promotion_replay_records")
                        .and_then(ValueExt::as_u64),
                    map.get("stale_reads_served").and_then(ValueExt::as_u64),
                ) {
                    acc[3] += replays;
                    acc[4] += stale;
                }
                for (_, v) in map.iter() {
                    walk(v, acc, seen);
                }
            }
            Value::Array(items) => {
                for v in items {
                    walk(v, acc, seen);
                }
            }
            _ => {}
        }
    }
    let mut acc = [0u64; 5];
    let mut seen = false;
    walk(value, &mut acc, &mut seen);
    if !seen {
        return None;
    }
    let [seals, pubs, appends, replays, stale] = acc;
    Some(format!(
        "epochs bumped {seals}  zombie publishes rejected {pubs}  zombie appends rejected {appends}  promotion replays {replays}  stale reads served {stale}"
    ))
}

/// Maps a metric name onto the Prometheus charset `[a-zA-Z0-9_:]`,
/// replacing every other byte with `_` (and prefixing `_` if the name
/// would start with a digit). Registry names are already conformant; this
/// guards externally-sourced names (merged `--metrics-json` files) from
/// producing an unparsable exposition.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double quote, and newline must be escaped inside the
/// `label="…"` quotes.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format
/// (cumulative `_bucket{le=…}` series per histogram). Names are run
/// through [`sanitize_metric_name`] and label values through
/// [`escape_label_value`].
pub fn prometheus_text(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &metrics.counters {
        let name = sanitize_metric_name(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    for g in &metrics.gauges {
        let name = sanitize_metric_name(&g.name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
    }
    for h in &metrics.histograms {
        let name = sanitize_metric_name(&h.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for b in &h.histogram.buckets {
            cumulative += b.count;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                HistogramSnapshot::bucket_upper_nanos(b.index)
            ));
        }
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            escape_label_value("+Inf"),
            h.histogram.count,
            h.histogram.sum_nanos,
            h.histogram.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;
    use serde_json::json;

    fn sample_registry() -> MetricRegistry {
        let reg = MetricRegistry::new();
        reg.counter(names::STORAGE_APPENDS_TOTAL).add(3);
        reg.gauge(names::GC_LAST_CYCLE_MOVED_BYTES).set(512);
        let h = reg.histogram(names::STORAGE_READ_LATENCY_NS);
        for v in [1_000u64, 2_000, 900_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(840), "840ns");
        assert_eq!(fmt_nanos(3_400), "3.4µs");
        assert_eq!(fmt_nanos(1_250_000), "1.25ms");
        assert_eq!(fmt_nanos(2_100_000_000), "2.100s");
    }

    #[test]
    fn latency_lines_always_include_required_ops() {
        let lines = latency_lines(&sample_registry().snapshot());
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("latency storage_read: p50 "));
        assert!(lines[0].contains("(n=3)"));
        assert!(
            lines[1].contains("(n=0)"),
            "append never recorded: {}",
            lines[1]
        );
        assert!(lines[2].starts_with("latency wal_flush:"));
        assert!(lines[3].starts_with("latency gc_move:"));
    }

    #[test]
    fn empty_histograms_marked_not_fake_measured() {
        let lines = latency_lines(&sample_registry().snapshot());
        // The unexercised ops must not print `max 0ns` lines that read as
        // real (implausibly fast) measurements.
        for line in &lines[1..] {
            assert!(
                !line.contains("max 0ns"),
                "empty histogram rendered as a measurement: {line}"
            );
            assert!(
                line.ends_with("no samples (n=0)"),
                "expected the n=0 marker: {line}"
            );
        }
        assert!(
            lines[0].contains("max "),
            "exercised op still shows percentiles: {}",
            lines[0]
        );
    }

    #[test]
    fn sanitize_metric_name_maps_to_prometheus_charset() {
        assert_eq!(
            sanitize_metric_name("storage_appends_total"),
            "storage_appends_total"
        );
        assert_eq!(
            sanitize_metric_name("bad name-with.dots"),
            "bad_name_with_dots"
        );
        assert_eq!(
            sanitize_metric_name("9starts_with_digit"),
            "_9starts_with_digit"
        );
        assert_eq!(sanitize_metric_name("colons:ok"), "colons:ok");
        assert_eq!(sanitize_metric_name("ünïcode"), "_n_code");
    }

    #[test]
    fn escape_label_value_escapes_quotes_backslashes_newlines() {
        assert_eq!(escape_label_value("+Inf"), "+Inf");
        assert_eq!(escape_label_value(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("line1\nline2"), r"line1\nline2");
    }

    #[test]
    fn prometheus_text_sanitizes_external_names() {
        let mut snap = sample_registry().snapshot();
        // Externally-merged snapshots can carry non-conformant names.
        snap.counters.push(crate::registry::CounterSample {
            name: "weird metric.name".to_string(),
            value: 7,
        });
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE weird_metric_name counter\nweird_metric_name 7\n"));
        assert!(!text.contains("weird metric.name"));
    }

    #[test]
    fn collect_metrics_finds_nested_snapshots() {
        let snap = sample_registry().snapshot();
        let report = json!({
            "engine": { "metrics": (serde_json::to_value(&snap).unwrap()) },
            "other": [1u64, 2u64]
        });
        let merged = collect_metrics(&report).expect("snapshot embedded");
        assert_eq!(merged.counter(names::STORAGE_APPENDS_TOTAL), Some(3));
        // Two embedded copies sum.
        let double = json!([
            (serde_json::to_value(&snap).unwrap()),
            (serde_json::to_value(&snap).unwrap())
        ]);
        let merged = collect_metrics(&double).unwrap();
        assert_eq!(merged.counter(names::STORAGE_APPENDS_TOTAL), Some(6));
        assert!(collect_metrics(&json!({ "a": 1u64 })).is_none());
    }

    #[test]
    fn cache_summary_guards_zero_division() {
        let report = json!({ "io": { "cache_hits": 0u64, "cache_misses": 0u64 } });
        let line = cache_summary(&report).unwrap();
        assert!(line.contains("read-amp 1.00"), "{line}");
        assert!(cache_summary(&json!({ "x": 1u64 })).is_none());
    }

    #[test]
    fn fencing_summary_folds_counters() {
        let report = json!({
            "fence": { "seals": 2u64, "rejected_publishes": 1u64, "rejected_appends": 4u64 },
            "promotion_replay_records": 9u64,
            "stale_reads_served": 3u64
        });
        let line = fencing_summary(&report).unwrap();
        assert!(line.contains("epochs bumped 2"));
        assert!(line.contains("zombie appends rejected 4"));
        assert!(line.contains("promotion replays 9"));
    }

    #[test]
    fn prometheus_text_shape() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE storage_appends_total counter\nstorage_appends_total 3\n"));
        assert!(text
            .contains("# TYPE gc_last_cycle_moved_bytes gauge\ngc_last_cycle_moved_bytes 512\n"));
        assert!(text.contains("# TYPE storage_read_latency_ns histogram\n"));
        assert!(text.contains("storage_read_latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("storage_read_latency_ns_count 3\n"));
        // Cumulative: the last finite bucket's count never exceeds +Inf's.
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("storage_read_latency_ns_sum"))
            .unwrap();
        assert_eq!(sum_line, "storage_read_latency_ns_sum 903000");
    }
}
