//! A small JSON text parser producing the vendored serde [`Value`] tree.
//!
//! The vendored `serde_json` stand-in is serialize-only; this module is
//! the read side, used by the `--metrics-json` round-trip tests and the
//! `metrics_check` drift gate in `scripts/check.sh`. It accepts exactly
//! what the shim's writer produces (strict JSON, `\uXXXX` escapes, no
//! comments or trailing commas).

use serde_json::{Map, Number, Value};

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`]. Trailing content (other than
/// whitespace) is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in the shim writer's
                            // output; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected a number"));
        }
        let number = if is_float {
            Number::F64(text.parse().map_err(|_| self.err("bad float"))?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative: i64, tolerating `-0`.
            if stripped.chars().all(|c| c == '0') {
                Number::I64(0)
            } else {
                Number::I64(text.parse().map_err(|_| self.err("integer out of range"))?)
            }
        } else {
            Number::U64(text.parse().map_err(|_| self.err("integer out of range"))?)
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueExt;
    use serde_json::json;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn round_trips_writer_output() {
        let doc = json!({
            "name": "storage_read_latency_ns",
            "values": [0u64, 31u64, 1000000u64],
            "nested": { "pi": 3.5, "neg": (-12i64), "esc": "tab\tquote\"" },
            "flag": true,
            "nothing": null
        });
        for text in [
            serde_json::to_string(&doc).unwrap(),
            serde_json::to_string_pretty(&doc).unwrap(),
        ] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parses_u64_max() {
        let text = u64::MAX.to_string();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }
}
