//! Lock-free log-bucketed latency histogram (HdrHistogram-style).
//!
//! Values are virtual-time durations in **nanoseconds** (the unit every
//! `*_latency_ns` metric in this workspace uses). Recording is a handful of
//! relaxed atomic adds — no locks, no allocation — so it is safe on the
//! hottest read path. Buckets are logarithmic with 32 sub-buckets per
//! octave, giving a worst-case relative error of 1/32 (~3%) on any
//! percentile query.
//!
//! Snapshots are plain data: they serialize through the vendored serde shim
//! (sparse `Vec` of non-empty buckets, no maps) and merge across threads,
//! stores, and subsystems by summing per-bucket counts.

use crate::value::ValueExt;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32): values below this are counted exactly.
const SUB: u64 = 1 << SUB_BITS;
/// Largest exponent with its own buckets. 2^43 ns ≈ 2.4 virtual hours;
/// anything slower lands in the overflow counter (exact max still tracked).
const MAX_EXP: u32 = 42;
/// Total bucket count: 32 exact buckets + 38 octaves × 32 sub-buckets.
const NUM_BUCKETS: usize = ((MAX_EXP - SUB_BITS + 2) as usize) << SUB_BITS;

/// Bucket index for a value, or `None` if it exceeds the tracked range.
fn index_for(value: u64) -> Option<usize> {
    if value < SUB {
        return Some(value as usize);
    }
    let exp = 63 - value.leading_zeros();
    if exp > MAX_EXP {
        return None;
    }
    let sub = ((value >> (exp - SUB_BITS)) - SUB) as usize;
    Some((((exp - SUB_BITS + 1) as usize) << SUB_BITS) + sub)
}

/// Inclusive upper bound of the value range covered by a bucket index.
pub(crate) fn bucket_upper(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB {
        return i;
    }
    let block = i >> SUB_BITS; // >= 1 past the exact region
    let sub = i & (SUB - 1);
    let exp = block as u32 + SUB_BITS - 1;
    let width = 1u64 << (exp - SUB_BITS);
    (1u64 << exp) + sub * width + width - 1
}

/// Lock-free histogram of nanosecond durations.
///
/// Cheap to record into from many threads at once; `snapshot()` takes a
/// point-in-time copy that is exact with quiesced writers and
/// consistent-enough under concurrency (same guarantee as `IoStats`).
#[derive(Debug)]
pub struct LatencyHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    overflow: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, AtomicU64::default);
        LatencyHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            buckets,
        }
    }

    /// Records one duration in nanoseconds. Atomics only — no locks.
    pub fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.min.fetch_min(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
        match index_for(nanos) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy with only the non-empty buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum_nanos: self.sum.load(Ordering::Relaxed),
            min_nanos: if count == 0 { 0 } else { min },
            max_nanos: self.max.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some(BucketCount {
                        index: i as u32,
                        count: n,
                    })
                })
                .collect(),
        }
    }
}

/// One non-empty histogram bucket: `index` is the internal log-bucket
/// index, `count` the number of samples that landed in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Internal log-bucket index (see [`HistogramSnapshot::bucket_upper_nanos`]).
    pub index: u32,
    /// Samples recorded into this bucket.
    pub count: u64,
}

/// Serializable point-in-time copy of a [`LatencyHistogram`].
///
/// All durations are virtual-time nanoseconds. `buckets` is sparse and
/// sorted by index; overflow samples (beyond ~2.4 virtual hours) are in
/// `overflow` with the exact maximum preserved in `max_nanos`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples recorded (including overflow).
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds (wrapping on overflow).
    pub sum_nanos: u64,
    /// Smallest recorded duration (0 when empty).
    pub min_nanos: u64,
    /// Largest recorded duration (exact, even for overflow samples).
    pub max_nanos: u64,
    /// Samples beyond the bucketed range.
    pub overflow: u64,
    /// Sparse non-empty buckets, ascending by index.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Inclusive upper bound, in nanoseconds, of a bucket index.
    pub fn bucket_upper_nanos(index: u32) -> u64 {
        bucket_upper(index as usize)
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, as a bucket upper bound (≤3%
    /// relative error), clamped to the exact observed maximum. Returns 0
    /// for an empty histogram. Quantiles that fall in the overflow region
    /// return the exact maximum.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= target {
                return bucket_upper(b.index as usize).min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Folds another snapshot into this one (per-bucket sum, min/max fold).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum_nanos = self.sum_nanos.wrapping_add(other.sum_nanos);
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        self.overflow += other.overflow;
        let mut merged: Vec<BucketCount> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) if x.index == y.index => {
                    merged.push(BucketCount {
                        index: x.index,
                        count: x.count + y.count,
                    });
                    a.next();
                    b.next();
                }
                (Some(x), Some(y)) if x.index < y.index => {
                    merged.push(**x);
                    a.next();
                }
                (Some(_), Some(y)) => {
                    merged.push(**y);
                    b.next();
                }
                (Some(x), None) => {
                    merged.push(**x);
                    a.next();
                }
                (None, Some(y)) => {
                    merged.push(**y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// Rebuilds a snapshot from its serialized [`Value`] form.
    pub fn from_value(value: &Value) -> Option<HistogramSnapshot> {
        let obj = value.as_object()?;
        let field = |name: &str| obj.get(name)?.as_u64();
        let mut buckets = Vec::new();
        for entry in obj.get("buckets")?.as_array()? {
            let b = entry.as_object()?;
            buckets.push(BucketCount {
                index: b.get("index")?.as_u64()? as u32,
                count: b.get("count")?.as_u64()?,
            });
        }
        Some(HistogramSnapshot {
            count: field("count")?,
            sum_nanos: field("sum_nanos")?,
            min_nanos: field("min_nanos")?,
            max_nanos: field("max_nanos")?,
            overflow: field("overflow")?,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_32() {
        for v in 0..SUB {
            assert_eq!(index_for(v), Some(v as usize));
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_cover_value() {
        for &v in &[
            32u64,
            33,
            63,
            64,
            65,
            100,
            1_000,
            1_000_000,
            123_456_789,
            (1u64 << 43) - 1,
        ] {
            let i = index_for(v).expect("in range");
            let upper = bucket_upper(i);
            assert!(upper >= v, "upper {upper} < value {v}");
            // relative error bound: upper bound within 1/32 of the value
            assert!((upper - v) as f64 <= v as f64 / 32.0 + 1.0);
        }
    }

    #[test]
    fn out_of_range_overflows() {
        assert_eq!(index_for(1u64 << 43), None);
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(5);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.max_nanos, u64::MAX);
        // p99 falls in the overflow region: exact max comes back.
        assert_eq!(snap.value_at_quantile(0.99), u64::MAX);
        // p50 is the in-range sample.
        assert_eq!(snap.value_at_quantile(0.50), 5);
    }

    #[test]
    fn empty_histogram() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min_nanos, 0);
        assert_eq!(snap.max_nanos, 0);
        assert_eq!(snap.value_at_quantile(0.5), 0);
        assert_eq!(snap.mean_nanos(), 0.0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn single_sample_every_quantile() {
        let h = LatencyHistogram::new();
        h.record(900_000);
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snap.value_at_quantile(q), 900_000, "q={q}");
        }
        assert_eq!(snap.min_nanos, 900_000);
        assert_eq!(snap.max_nanos, 900_000);
    }

    #[test]
    fn quantiles_on_uniform_data() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000); // 1µs..1ms
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        for (q, expect) in [(0.5, 500_000u64), (0.95, 950_000), (0.99, 990_000)] {
            let got = snap.value_at_quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.04, "q={q} got={got} expect~{expect}");
        }
        assert_eq!(snap.value_at_quantile(1.0), 1_000_000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for v in [1u64, 40, 40, 7_000, 1 << 50] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 40, 9_999_999] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = LatencyHistogram::new();
        h.record(123);
        let snap = h.snapshot();
        let mut m = snap.clone();
        m.merge(&HistogramSnapshot::default());
        assert_eq!(m, snap);
        let mut e = HistogramSnapshot::default();
        e.merge(&snap);
        assert_eq!(e, snap);
    }

    #[test]
    fn snapshot_value_round_trip() {
        let h = LatencyHistogram::new();
        for v in [0u64, 31, 32, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        let value = serde_json::to_value(&snap).unwrap();
        let back = HistogramSnapshot::from_value(&value).expect("round trip");
        assert_eq!(back, snap);
    }
}
