//! Structured trace events: a bounded ring of "what the engine did".
//!
//! Counters say *how many*; the trace says *in what order*. Events are
//! emitted at state transitions only (split-out, delta merge, relocation,
//! epoch seal, fence rejection, election, replay) — never on plain reads —
//! so the ring mutex is off the hot path. Sequence numbers are assigned
//! atomically and are deterministic for the seeded single-threaded
//! experiments, which is what lets the failover test assert on event
//! *order* (e.g. `epoch_seal` before any post-promotion `wal_append`).
//!
//! Timestamps are virtual-time nanoseconds from the store's `SimClock`,
//! not wall time.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What kind of state transition an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Deserialize)]
pub enum TraceKind {
    /// Forest moved a group out of the INIT tree into a dedicated tree.
    TreeSplitOut,
    /// Bw-tree consolidated a delta chain into a new base page.
    DeltaMerge,
    /// GC moved the live records out of an extent.
    ExtentRelocate,
    /// GC dropped an extent wholesale on TTL expiry.
    ExtentExpire,
    /// The mapping table sealed an epoch (failover promotion barrier).
    EpochSeal,
    /// A mapping publish was rejected by the epoch fence.
    FenceRejectedPublish,
    /// A WAL append was rejected by the epoch fence.
    FenceRejectedAppend,
    /// The failover coordinator elected a new leader.
    LeaderElected,
    /// An RO follower applied a batch of WAL records.
    RoReplay,
    /// The WAL durably appended a record.
    WalAppend,
    /// An RO follower finished promotion to leader.
    Promotion,
    /// A record frame failed verification on a read or rescan.
    ChecksumMismatch,
    /// The scrubber (or a verify pass) quarantined an extent.
    ExtentQuarantine,
    /// A quarantined extent was repaired: records re-homed, holes
    /// re-materialized from the repair source.
    ExtentRepair,
    /// The scrubber completed one verification cycle.
    ScrubCycle,
    /// A failed durability barrier poisoned a stream tail (fsyncgate).
    SyncPoisoned,
}

impl TraceKind {
    /// Stable snake_case name (the form used in serialized traces and in
    /// DESIGN.md's event catalog).
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceKind::TreeSplitOut => "tree_split_out",
            TraceKind::DeltaMerge => "delta_merge",
            TraceKind::ExtentRelocate => "extent_relocate",
            TraceKind::ExtentExpire => "extent_expire",
            TraceKind::EpochSeal => "epoch_seal",
            TraceKind::FenceRejectedPublish => "fence_rejected_publish",
            TraceKind::FenceRejectedAppend => "fence_rejected_append",
            TraceKind::LeaderElected => "leader_elected",
            TraceKind::RoReplay => "ro_replay",
            TraceKind::WalAppend => "wal_append",
            TraceKind::Promotion => "promotion",
            TraceKind::ChecksumMismatch => "checksum_mismatch",
            TraceKind::ExtentQuarantine => "extent_quarantine",
            TraceKind::ExtentRepair => "extent_repair",
            TraceKind::ScrubCycle => "scrub_cycle",
            TraceKind::SyncPoisoned => "sync_poisoned",
        }
    }
}

// Hand-written so traces serialize as the stable snake_case names rather
// than the Rust variant names.
impl Serialize for TraceKind {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

/// One trace event. `subject` and `detail` are kind-specific numeric
/// payloads (extent id, epoch, LSN, byte count, ...) documented in
/// DESIGN.md's catalog — numeric so events stay POD and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotonic sequence number (gap-free even when the ring drops).
    pub seq: u64,
    /// Virtual-time nanoseconds at emission.
    pub at_nanos: u64,
    /// The state transition.
    pub kind: TraceKind,
    /// Primary id: extent, epoch, LSN, or tree id depending on `kind`.
    pub subject: u64,
    /// Secondary payload: byte count, record count, or epoch.
    pub detail: u64,
}

struct TraceInner {
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    // Registry counter mirroring `dropped`, wired by the owning store so
    // ring overflow is visible in exports, not just via `dropped()`.
    drop_counter: Mutex<Option<crate::registry::Counter>>,
    ring: Mutex<VecDeque<TraceEvent>>,
}

/// Shared, bounded buffer of [`TraceEvent`]s. Cloning shares the ring, so
/// every subsystem wired to one store appends into the same ordered
/// stream. When full, the oldest events are dropped (and counted).
#[derive(Clone)]
pub struct TraceBuffer {
    inner: Arc<TraceInner>,
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.inner.ring.lock().len())
            .field("dropped", &self.inner.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl TraceBuffer {
    /// Default ring size: comfortably holds a full failover experiment
    /// while bounding memory for append-heavy chaos runs.
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// Creates an empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            inner: Arc::new(TraceInner {
                capacity: capacity.max(1),
                next_seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                drop_counter: Mutex::new(None),
                ring: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Appends an event, evicting the oldest if full. Returns the
    /// sequence number assigned to the event.
    pub fn emit(&self, at_nanos: u64, kind: TraceKind, subject: u64, detail: u64) -> u64 {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.inner.ring.lock();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(counter) = &*self.inner.drop_counter.lock() {
                counter.inc();
            }
        }
        ring.push_back(TraceEvent {
            seq,
            at_nanos,
            kind,
            subject,
            detail,
        });
        seq
    }

    /// Copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.ring.lock().iter().copied().collect()
    }

    /// Buffered events with `seq >= since`, oldest first.
    pub fn events_since(&self, since: u64) -> Vec<TraceEvent> {
        self.inner
            .ring
            .lock()
            .iter()
            .filter(|e| e.seq >= since)
            .copied()
            .collect()
    }

    /// Sequence number the next emitted event will get.
    pub fn next_seq(&self) -> u64 {
        self.inner.next_seq.load(Ordering::Relaxed)
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Mirrors future drops into `counter` (normally the registry's
    /// `trace_dropped_events_total`), so ring overflow shows up in the
    /// Prometheus/JSON exports instead of vanishing silently.
    pub fn set_drop_counter(&self, counter: crate::registry::Counter) {
        // Catch up on drops that happened before wiring.
        counter.add(self.inner.dropped.load(Ordering::Relaxed));
        *self.inner.drop_counter.lock() = Some(counter);
    }

    /// Maximum number of buffered events.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Discards buffered events (sequence numbers keep advancing).
    pub fn clear(&self) {
        self.inner.ring.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueExt;

    #[test]
    fn emits_in_order_with_gapless_seq() {
        let buf = TraceBuffer::new(16);
        for i in 0..5 {
            let seq = buf.emit(i * 10, TraceKind::WalAppend, i, 0);
            assert_eq!(seq, i);
        }
        let events = buf.events();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(buf.events_since(3).len(), 2);
    }

    #[test]
    fn ring_drops_oldest() {
        let buf = TraceBuffer::new(3);
        for i in 0..5u64 {
            buf.emit(i, TraceKind::DeltaMerge, i, 0);
        }
        let events = buf.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two evicted");
        assert_eq!(buf.dropped(), 2);
        assert_eq!(buf.next_seq(), 5, "seq keeps counting past drops");
    }

    #[test]
    fn ring_overflow_is_exported_via_drop_counter() {
        let registry = crate::MetricRegistry::new();
        let buf = TraceBuffer::new(2);
        buf.emit(0, TraceKind::WalAppend, 0, 0);
        buf.emit(1, TraceKind::WalAppend, 1, 0);
        buf.emit(2, TraceKind::WalAppend, 2, 0); // drops before wiring
        buf.set_drop_counter(registry.counter(crate::names::TRACE_DROPPED_EVENTS_TOTAL));
        buf.emit(3, TraceKind::WalAppend, 3, 0); // drops after wiring
        assert_eq!(buf.dropped(), 2);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(crate::names::TRACE_DROPPED_EVENTS_TOTAL),
            Some(2),
            "pre-wiring drops caught up, post-wiring drops counted live"
        );
        assert!(
            snap.counter(crate::names::TRACE_DROPPED_EVENTS_TOTAL)
                .unwrap()
                > 0,
            "overflow must be visible in exports, never silent"
        );
        let text = crate::export::prometheus_text(&snap);
        assert!(text.contains("trace_dropped_events_total 2"));
    }

    #[test]
    fn clones_share_the_ring() {
        let a = TraceBuffer::new(8);
        let b = a.clone();
        a.emit(1, TraceKind::EpochSeal, 2, 0);
        b.emit(2, TraceKind::WalAppend, 3, 2);
        assert_eq!(a.events().len(), 2);
        assert_eq!(b.events()[0].kind, TraceKind::EpochSeal);
    }

    #[test]
    fn serializes_snake_case_kinds() {
        let buf = TraceBuffer::new(4);
        buf.emit(7, TraceKind::EpochSeal, 3, 0);
        let value = serde_json::to_value(&buf.events()).unwrap();
        let first = value.as_array().unwrap()[0].as_object().unwrap();
        assert_eq!(first.get("kind").unwrap().as_str(), Some("epoch_seal"));
        assert_eq!(first.get("at_nanos").unwrap().as_u64(), Some(7));
    }
}
