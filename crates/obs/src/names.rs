//! Stable metric names.
//!
//! These strings are the public contract between the engine, the bench
//! harness, `--metrics-json` consumers, and the `scripts/check.sh` drift
//! gate. Add names here (and to DESIGN.md's table) rather than inlining
//! string literals at call sites.
//!
//! Conventions: counters end in `_total` (or `_bytes_total`), gauges are
//! bare nouns, histograms end in `_latency_ns` and record **virtual-time
//! nanoseconds** (see `bg3_storage::SimClock`).

/// Append operations (foreground + relocation).
pub const STORAGE_APPENDS_TOTAL: &str = "storage_appends_total";
/// Bytes written by appends.
pub const STORAGE_BYTES_APPENDED_TOTAL: &str = "storage_bytes_appended_total";
/// Random read operations that reached storage.
pub const STORAGE_RANDOM_READS_TOTAL: &str = "storage_random_reads_total";
/// Bytes returned by storage reads.
pub const STORAGE_BYTES_READ_TOTAL: &str = "storage_bytes_read_total";
/// Record invalidations.
pub const STORAGE_INVALIDATIONS_TOTAL: &str = "storage_invalidations_total";
/// Valid records moved by space reclamation.
pub const GC_RELOCATION_MOVES_TOTAL: &str = "gc_relocation_moves_total";
/// Bytes rewritten by space reclamation.
pub const GC_RELOCATION_BYTES_TOTAL: &str = "gc_relocation_bytes_total";
/// Relocated bytes that later became garbage anyway (wasted background I/O).
pub const GC_WASTED_RELOCATION_BYTES_TOTAL: &str = "gc_wasted_relocation_bytes_total";
/// Extents freed after relocation.
pub const GC_EXTENTS_RECLAIMED_TOTAL: &str = "gc_extents_reclaimed_total";
/// Extents dropped wholesale on TTL expiry.
pub const GC_EXTENTS_EXPIRED_TOTAL: &str = "gc_extents_expired_total";
/// Completed reclaimer cycles.
pub const GC_CYCLES_TOTAL: &str = "gc_cycles_total";
/// Mapping-table version publishes.
pub const MAPPING_PUBLISHES_TOTAL: &str = "mapping_publishes_total";
/// Reads served by the page cache instead of storage.
pub const CACHE_HITS_TOTAL: &str = "cache_hits_total";
/// Cache lookups that fell through to a storage read.
pub const CACHE_MISSES_TOTAL: &str = "cache_misses_total";
/// Cache entries removed (CLOCK displacement + coherence evictions).
pub const CACHE_EVICTIONS_TOTAL: &str = "cache_evictions_total";
/// Epoch seals (completed failover promotions).
pub const EPOCH_SEALS_TOTAL: &str = "epoch_seals_total";
/// Mapping publishes rejected by the epoch fence.
pub const FENCED_PUBLISHES_TOTAL: &str = "fenced_publishes_total";
/// WAL appends rejected by the epoch fence.
pub const FENCED_APPENDS_TOTAL: &str = "fenced_appends_total";
/// Record frames that failed verification (reads, rescans, scrub passes).
pub const CHECKSUM_MISMATCHES_TOTAL: &str = "checksum_mismatches_total";
/// Extents moved into quarantine by frame verification.
pub const SCRUB_EXTENTS_QUARANTINED_TOTAL: &str = "scrub_extents_quarantined_total";
/// Quarantined extents successfully repaired and reclaimed.
pub const SCRUB_EXTENTS_REPAIRED_TOTAL: &str = "scrub_extents_repaired_total";
/// Record frames checked by scrub passes (intact + corrupt).
pub const SCRUB_RECORDS_VERIFIED_TOTAL: &str = "scrub_records_verified_total";
/// Corrupt records re-materialized from a repair source.
pub const SCRUB_RECORDS_RESUPPLIED_TOTAL: &str = "scrub_records_resupplied_total";
/// Completed scrubber cycles.
pub const SCRUB_CYCLES_TOTAL: &str = "scrub_cycles_total";
/// Physical write calls issued to the extent backend (sim or file).
pub const BACKEND_WRITES_TOTAL: &str = "backend_writes_total";
/// Physical bytes handed to the extent backend (frame headers included).
pub const BACKEND_BYTES_WRITTEN_TOTAL: &str = "backend_bytes_written_total";
/// Physical positioned-read calls issued to the extent backend.
pub const BACKEND_READS_TOTAL: &str = "backend_reads_total";
/// Physical bytes returned by the extent backend.
pub const BACKEND_BYTES_READ_TOTAL: &str = "backend_bytes_read_total";
/// Durability barriers (fsync / sim no-op) issued to the extent backend.
pub const BACKEND_SYNCS_TOTAL: &str = "backend_syncs_total";
/// Extents durably sealed by the backend (sync-then-freeze).
pub const BACKEND_SEALS_TOTAL: &str = "backend_seals_total";
/// Extent backing objects deleted (reclaim/expiry/repair).
pub const BACKEND_DELETES_TOTAL: &str = "backend_deletes_total";
/// Bytes scanned by batched adjacency reads (CSR fast path + fallback).
pub const QUERY_SCAN_BYTES_TOTAL: &str = "query_scan_bytes_total";
/// Distinct sealed segments (leaf pages) touched by batched adjacency
/// scans — the denominator of the "scan once per hop" claim.
pub const QUERY_CSR_SEGMENTS_SCANNED_TOTAL: &str = "query_csr_segments_scanned_total";
/// Expand steps whose count/dedup terminal was pushed into the scan, so
/// no traversers were materialized.
pub const QUERY_PUSHDOWN_HITS_TOTAL: &str = "query_pushdown_hits_total";
/// Operations accepted by admission control (all op classes).
pub const ADMIT_ADMITTED_TOTAL: &str = "admit_admitted_total";
/// Operations shed by admission control (queue overflow + deadline sheds).
pub const ADMIT_SHED_TOTAL: &str = "admit_shed_total";
/// Reads served stale from an RO replica under the degradation ladder
/// instead of waiting for WAL catch-up.
pub const ADMIT_STALE_READS_TOTAL: &str = "admit_stale_reads_total";
/// Traversal expansions truncated by the executor's per-hop cost ceiling
/// (degraded-mode traversals only; fresh-mode queries never truncate).
pub const QUERY_HOP_TRUNCATIONS_TOTAL: &str = "query_hop_truncations_total";
/// Queries executed under PROFILE mode (span tree + cost ledger).
pub const QUERY_PROFILES_TOTAL: &str = "query_profiles_total";
/// Spans recorded by profiled queries (root + per-hop).
pub const QUERY_PROFILE_SPANS_TOTAL: &str = "query_profile_spans_total";
/// Profiles offered to the slow-query log.
pub const SLOW_QUERY_RECORDED_TOTAL: &str = "slow_query_recorded_total";
/// Slow-log offers that displaced an entry or were dropped as too cheap.
pub const SLOW_QUERY_EVICTED_TOTAL: &str = "slow_query_evicted_total";
/// Trace-ring events overwritten before they could be read (ring wrap).
pub const TRACE_DROPPED_EVENTS_TOTAL: &str = "trace_dropped_events_total";
/// Streams poisoned by a failed durability barrier (fsyncgate rule: the
/// first failed sync/seal permanently fails the tail closed).
pub const SYNC_POISONED_TOTAL: &str = "sync_poisoned_total";
/// Writes shed by the governed engine because the disk is full or the
/// store is poisoned (ENOSPC graceful degradation).
pub const ENOSPC_SHEDS_TOTAL: &str = "enospc_sheds_total";

/// Bytes moved by the most recent reclaimer cycle (gauge).
pub const GC_LAST_CYCLE_MOVED_BYTES: &str = "gc_last_cycle_moved_bytes";
/// Current virtual queue length of the deepest admission class (gauge).
pub const ADMIT_QUEUE_DEPTH: &str = "admit_queue_depth";
/// Profiles currently kept by the slow-query log (gauge).
pub const SLOW_QUERY_LOG_ENTRIES: &str = "slow_query_log_entries";
/// Modelled cost of the worst profile in the slow-query log (gauge; ns).
pub const SLOW_QUERY_WORST_COST_NS: &str = "slow_query_worst_cost_ns";
/// Current disk-health level (gauge): 0 = Ok, 1 = NearFull, 2 = Full,
/// 3 = Poisoned. Drives the governed engine's ENOSPC write shedding.
pub const DISK_HEALTH: &str = "disk_health";

/// Virtual-time latency of storage random reads (cache misses; ns).
pub const STORAGE_READ_LATENCY_NS: &str = "storage_read_latency_ns";
/// Virtual-time latency of storage appends (ns).
pub const STORAGE_APPEND_LATENCY_NS: &str = "storage_append_latency_ns";
/// Virtual-time latency of mapping-table version publishes (ns).
pub const MAPPING_PUBLISH_LATENCY_NS: &str = "mapping_publish_latency_ns";
/// Virtual-time latency of one WAL append+flush, including retries (ns).
pub const WAL_FLUSH_LATENCY_NS: &str = "wal_flush_latency_ns";
/// Virtual-time latency of relocating one record (read + rewrite; ns).
pub const GC_MOVE_LATENCY_NS: &str = "gc_move_latency_ns";
/// Virtual-time latency of one RO→RW promotion (seal + replay; ns).
pub const PROMOTION_LATENCY_NS: &str = "promotion_latency_ns";
/// Virtual-time latency of one scrubber cycle (verify + repair; ns).
pub const SCRUB_CYCLE_LATENCY_NS: &str = "scrub_cycle_latency_ns";
/// Frontier sizes fed to batched expansion. A *size* histogram, not a
/// latency one — an exception to the `_latency_ns` convention, recorded in
/// vertices rather than nanoseconds.
pub const QUERY_FRONTIER_LEN: &str = "query_frontier_len";
/// Virtual-time queue wait charged to admitted operations by the
/// token-bucket admission model (ns).
pub const ADMIT_QUEUE_WAIT_LATENCY_NS: &str = "admit_queue_wait_latency_ns";
/// Modelled virtual-time cost of profiled queries (waits + per-segment +
/// per-byte scan pricing; ns). The slow-query log ranks by this.
pub const QUERY_PROFILE_COST_LATENCY_NS: &str = "query_profile_cost_latency_ns";

/// Counters every store registers up front; the check.sh drift gate
/// requires all of these in `--metrics-json` output.
pub const REQUIRED_COUNTERS: &[&str] = &[
    STORAGE_APPENDS_TOTAL,
    STORAGE_BYTES_APPENDED_TOTAL,
    STORAGE_RANDOM_READS_TOTAL,
    STORAGE_BYTES_READ_TOTAL,
    STORAGE_INVALIDATIONS_TOTAL,
    GC_RELOCATION_MOVES_TOTAL,
    GC_RELOCATION_BYTES_TOTAL,
    GC_WASTED_RELOCATION_BYTES_TOTAL,
    GC_EXTENTS_RECLAIMED_TOTAL,
    GC_EXTENTS_EXPIRED_TOTAL,
    MAPPING_PUBLISHES_TOTAL,
    CACHE_HITS_TOTAL,
    CACHE_MISSES_TOTAL,
    CACHE_EVICTIONS_TOTAL,
    EPOCH_SEALS_TOTAL,
    FENCED_PUBLISHES_TOTAL,
    FENCED_APPENDS_TOTAL,
    CHECKSUM_MISMATCHES_TOTAL,
    SCRUB_EXTENTS_QUARANTINED_TOTAL,
    SCRUB_EXTENTS_REPAIRED_TOTAL,
    SCRUB_RECORDS_VERIFIED_TOTAL,
    SCRUB_RECORDS_RESUPPLIED_TOTAL,
    BACKEND_WRITES_TOTAL,
    BACKEND_BYTES_WRITTEN_TOTAL,
    BACKEND_READS_TOTAL,
    BACKEND_BYTES_READ_TOTAL,
    BACKEND_SYNCS_TOTAL,
    BACKEND_SEALS_TOTAL,
    BACKEND_DELETES_TOTAL,
    QUERY_SCAN_BYTES_TOTAL,
    QUERY_CSR_SEGMENTS_SCANNED_TOTAL,
    QUERY_PUSHDOWN_HITS_TOTAL,
    ADMIT_ADMITTED_TOTAL,
    ADMIT_SHED_TOTAL,
    ADMIT_STALE_READS_TOTAL,
    QUERY_HOP_TRUNCATIONS_TOTAL,
    QUERY_PROFILES_TOTAL,
    QUERY_PROFILE_SPANS_TOTAL,
    SLOW_QUERY_RECORDED_TOTAL,
    SLOW_QUERY_EVICTED_TOTAL,
    TRACE_DROPPED_EVENTS_TOTAL,
    SYNC_POISONED_TOTAL,
    ENOSPC_SHEDS_TOTAL,
];

/// Histograms every store registers up front; also enforced by the gate,
/// and the first four are the per-experiment summary's latency lines.
pub const REQUIRED_HISTOGRAMS: &[&str] = &[
    STORAGE_READ_LATENCY_NS,
    STORAGE_APPEND_LATENCY_NS,
    WAL_FLUSH_LATENCY_NS,
    GC_MOVE_LATENCY_NS,
    MAPPING_PUBLISH_LATENCY_NS,
    PROMOTION_LATENCY_NS,
    SCRUB_CYCLE_LATENCY_NS,
    QUERY_FRONTIER_LEN,
    ADMIT_QUEUE_WAIT_LATENCY_NS,
    QUERY_PROFILE_COST_LATENCY_NS,
];
