//! Accessor helpers for the vendored serde value tree.
//!
//! The shim `Value` is a plain enum with no convenience methods; this
//! extension trait adds the handful of `as_*` accessors the exporters and
//! parsers need, with real-serde-compatible semantics.

use serde_json::{Map, Number, Value};

/// `as_*` accessors over the shim [`Value`].
pub trait ValueExt {
    /// The object map, if this is `Value::Object`.
    fn as_object(&self) -> Option<&Map>;
    /// The array, if this is `Value::Array`.
    fn as_array(&self) -> Option<&Vec<Value>>;
    /// The string slice, if this is `Value::String`.
    fn as_str(&self) -> Option<&str>;
    /// The value as a `u64`, if it is a non-negative integral number.
    fn as_u64(&self) -> Option<u64>;
    /// The value as an `i64`, if it is an in-range integral number.
    fn as_i64(&self) -> Option<i64>;
    /// The value as an `f64`, if it is any number.
    fn as_f64(&self) -> Option<f64>;
}

impl ValueExt for Value {
    fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::F64(v))
                if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 =>
            {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::F64(v)) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn accessors_match_variants() {
        let v = json!({ "n": 7u64, "s": "x", "a": [1u64] });
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(obj.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(obj.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(obj.get("n").unwrap().as_f64(), Some(7.0));
        assert!(v.as_str().is_none());
    }

    #[test]
    fn signed_unsigned_conversions() {
        assert_eq!(json!(-3i64).as_i64(), Some(-3));
        assert_eq!(json!(-3i64).as_u64(), None);
        assert_eq!(json!(3u64).as_i64(), Some(3));
        assert_eq!(json!(2.0f64).as_u64(), Some(2));
        assert_eq!(json!(2.5f64).as_u64(), None);
    }
}
