//! Metric registry: named `Counter` / `Gauge` / `Histogram` handles.
//!
//! Registration (name lookup) takes a short mutex and happens once per
//! metric per subsystem, at construction time. The handles themselves are
//! `Arc`-wrapped atomics: recording is a relaxed `fetch_add` / `store` /
//! histogram bucket add with **no lock acquisition**, which is the hot-path
//! contract the striped-forest stress test enforces.

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::value::ValueExt;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counter handle. Clone is cheap (Arc).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (relaxed atomic, lock-free).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge handle. Clone is cheap (Arc).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value (relaxed atomic, lock-free).
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared latency histogram handle (nanosecond durations). Clone is cheap.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<LatencyHistogram>);

impl Histogram {
    /// Records one duration in nanoseconds (atomics only).
    pub fn record(&self, nanos: u64) {
        self.0.record(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
    histograms: Mutex<Vec<(String, Histogram)>>,
}

/// A set of named metrics owned by one subsystem (e.g. one store's
/// `IoStats`). Cloning shares the underlying metrics; snapshots from
/// different registries merge by metric name at export time.
#[derive(Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricRegistry")
            .field("counters", &self.inner.counters.lock().len())
            .field("gauges", &self.inner.gauges.lock().len())
            .field("histograms", &self.inner.histograms.lock().len())
            .finish()
    }
}

fn get_or_insert<T: Clone + Default>(list: &Mutex<Vec<(String, T)>>, name: &str) -> T {
    let mut list = list.lock();
    if let Some((_, handle)) = list.iter().find(|(n, _)| n == name) {
        return handle.clone();
    }
    let handle = T::default();
    list.push((name.to_string(), handle.clone()));
    handle
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if needed.
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.inner.counters, name)
    }

    /// Returns the gauge registered under `name`, creating it if needed.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.inner.gauges, name)
    }

    /// Returns the histogram registered under `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&self.inner.histograms, name)
    }

    /// Point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSample> = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(name, c)| CounterSample {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSample> = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(name, g)| GaugeSample {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSample> = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| HistogramSample {
                name: name.clone(),
                histogram: h.snapshot(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter sample: cumulative count since process start.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Stable metric name (see `bg3_obs::names`).
    pub name: String,
    /// Cumulative value.
    pub value: u64,
}

/// One gauge sample: last observed value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Stable metric name.
    pub name: String,
    /// Last set value.
    pub value: i64,
}

/// One histogram sample: name plus its full snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Stable metric name (`*_latency_ns` — virtual-time nanoseconds).
    pub name: String,
    /// The histogram contents.
    pub histogram: HistogramSnapshot,
}

/// Serializable point-in-time copy of a whole registry (or several merged
/// ones). Vec-of-samples rather than maps so it round-trips through the
/// vendored serde shim; each list is sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter samples, ascending by name.
    pub counters: Vec<CounterSample>,
    /// Gauge samples, ascending by name.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples, ascending by name.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.histogram)
    }

    /// True when no metrics are present at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another snapshot into this one: counters and histograms sum
    /// by name, gauges keep the other side's value when both are present
    /// (last-writer-wins, matching gauge semantics). Name lists stay sorted.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.name == g.name) {
                Some(m) => m.value = g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(m) => m.histogram.merge(&h.histogram),
                None => self.histograms.push(h.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Rebuilds a snapshot from its serialized [`Value`] form. Returns
    /// `None` when the value does not have the snapshot shape.
    pub fn from_value(value: &Value) -> Option<MetricsSnapshot> {
        let obj = value.as_object()?;
        let mut out = MetricsSnapshot::default();
        for entry in obj.get("counters")?.as_array()? {
            let c = entry.as_object()?;
            out.counters.push(CounterSample {
                name: c.get("name")?.as_str()?.to_string(),
                value: c.get("value")?.as_u64()?,
            });
        }
        for entry in obj.get("gauges")?.as_array()? {
            let g = entry.as_object()?;
            out.gauges.push(GaugeSample {
                name: g.get("name")?.as_str()?.to_string(),
                value: g.get("value")?.as_i64()?,
            });
        }
        for entry in obj.get("histograms")?.as_array()? {
            let h = entry.as_object()?;
            out.histograms.push(HistogramSample {
                name: h.get("name")?.as_str()?.to_string(),
                histogram: HistogramSnapshot::from_value(h.get("histogram")?)?,
            });
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_by_name() {
        let reg = MetricRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("x_total").get(), 4);
        reg.gauge("g").set(-7);
        assert_eq!(reg.gauge("g").get(), -7);
        reg.histogram("h_ns").record(42);
        assert_eq!(reg.histogram("h_ns").count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricRegistry::new();
        reg.counter("zz").inc();
        reg.counter("aa").add(2);
        reg.histogram("h_ns").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "aa");
        assert_eq!(snap.counters[1].name, "zz");
        assert_eq!(snap.counter("aa"), Some(2));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.histogram("h_ns").unwrap().count, 1);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let r1 = MetricRegistry::new();
        let r2 = MetricRegistry::new();
        r1.counter("ops_total").add(5);
        r2.counter("ops_total").add(7);
        r2.counter("only_r2_total").inc();
        r1.histogram("lat_ns").record(100);
        r2.histogram("lat_ns").record(200);
        r1.gauge("depth").set(1);
        r2.gauge("depth").set(9);
        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("ops_total"), Some(12));
        assert_eq!(merged.counter("only_r2_total"), Some(1));
        assert_eq!(merged.histogram("lat_ns").unwrap().count, 2);
        assert_eq!(merged.gauge("depth"), Some(9));
    }

    #[test]
    fn snapshot_value_round_trip() {
        let reg = MetricRegistry::new();
        reg.counter("a_total").add(9);
        reg.gauge("b").set(-2);
        reg.histogram("c_ns").record(1234);
        let snap = reg.snapshot();
        let value = serde_json::to_value(&snap).unwrap();
        assert_eq!(MetricsSnapshot::from_value(&value).unwrap(), snap);
    }
}
