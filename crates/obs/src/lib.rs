//! Observability for the BG3 reproduction.
//!
//! Three pillars, all virtual-time aware and cheap enough for hot paths:
//!
//! - [`LatencyHistogram`] / [`MetricRegistry`]: lock-free log-bucketed
//!   latency distributions and named `Counter`/`Gauge`/`Histogram`
//!   handles. Recording is relaxed atomics only — no lock acquisition —
//!   so the striped-forest stress test runs unchanged with metrics on.
//! - [`TraceBuffer`]: a bounded ring of structured [`TraceEvent`]s at
//!   state transitions (split-out, delta merge, relocation, epoch seal,
//!   fence rejection, election, replay), letting chaos and failover
//!   experiments assert on *sequences*, not just totals.
//! - [`span`]: request-scoped tracing — a per-request `CostLedger` of
//!   attribution counters charged from inside the engine's `IoStats`
//!   recorders (so summed per-query ledgers equal global registry deltas
//!   by construction), virtual-time `Span` trees with per-hop cost
//!   deltas, and a keep-K-worst `SlowQueryLog` of `QueryProfile`s.
//! - [`export`] / [`json`]: Prometheus-text and JSON renderers, the
//!   shared per-experiment summary formatter, and the parser behind the
//!   `--metrics-json` round-trip checks.
//!
//! All durations are **virtual nanoseconds** from the storage `SimClock`;
//! wall time never enters the metrics (the bench harness reports
//! wall-clock runtimes separately).

pub mod export;
pub mod hist;
pub mod json;
pub mod names;
pub mod registry;
pub mod span;
pub mod trace;
pub mod value;

pub use hist::{BucketCount, HistogramSnapshot, LatencyHistogram};
pub use registry::{
    Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, MetricRegistry,
    MetricsSnapshot,
};
pub use span::{
    charge, CostDim, CostLedger, CostSnapshot, QueryProfile, SlowQueryLog, Span, SpanAttr,
    SpanRecord, TraceContext, VirtualClock,
};
pub use trace::{TraceBuffer, TraceEvent, TraceKind};
pub use value::ValueExt;
