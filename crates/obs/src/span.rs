//! Request-scoped tracing and per-query cost attribution.
//!
//! Three pieces build the query profiler:
//!
//! - [`CostLedger`]: a per-request vector of attribution counters
//!   ([`CostDim`]) — bytes scanned, CSR segments/hits, cache hits/misses,
//!   storage reads, WAL and admission waits, retries, delta merges
//!   crossed, hops truncated. A request *installs* its ledger on the
//!   current thread ([`CostLedger::install`]); every instrumented charge
//!   site in the engine then calls the free function [`charge`], which
//!   adds to the innermost installed ledger (a cheap thread-local check
//!   plus one relaxed atomic add) and is a near-no-op when no ledger is
//!   active. Charges live *inside* the same `IoStats` recorders that bump
//!   the global registry counters, so the conservation invariant — summed
//!   per-query ledgers equal the global registry deltas — holds by
//!   construction whenever every operation in a measurement window runs
//!   under an installed ledger.
//! - [`TraceContext`] / [`Span`]: cheap request-scoped span trees. IDs are
//!   plain `u64`s (a process-global trace id, per-context span ids),
//!   timestamps come from an injectable [`VirtualClock`] (virtual-time
//!   nanoseconds, never wall time), parent links make the flat
//!   [`SpanRecord`] list a serializable tree, and every finished span
//!   carries the ledger delta observed during its lifetime (inclusive of
//!   its children, like wall time).
//! - [`SlowQueryLog`]: a bounded keep-K-worst log of [`QueryProfile`]s
//!   ranked by modelled cost, with its occupancy and worst cost mirrored
//!   into `slow_query_*` registry metrics for the Prometheus/JSON
//!   exporters.

use crate::names;
use crate::registry::{Counter, Gauge, MetricRegistry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Modelled cost of touching one adjacency segment (leaf page) — the same
/// random-storage-round-trip constant the Fig. 8 and khop experiments
/// charge per scan unit.
pub const SEGMENT_SCAN_NS: u64 = 150_000;

/// One attribution dimension of a [`CostLedger`].
///
/// The discriminants index the ledger's atomic cells; [`CostSnapshot`]
/// names the same dimensions as serializable fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostDim {
    /// Adjacency bytes scanned (mirrors `query_scan_bytes_total`).
    BytesScanned = 0,
    /// Distinct sealed segments touched by batched adjacency scans
    /// (mirrors `query_csr_segments_scanned_total`).
    CsrSegments = 1,
    /// Leaf scans served from a packed CSR segment (no delta merge).
    CsrHits = 2,
    /// Page-cache hits (mirrors `cache_hits_total`).
    CacheHits = 3,
    /// Page-cache misses (mirrors `cache_misses_total`).
    CacheMisses = 4,
    /// Random reads that reached storage (mirrors
    /// `storage_random_reads_total`).
    StorageReads = 5,
    /// Bytes returned by storage reads (mirrors `storage_bytes_read_total`).
    StorageReadBytes = 6,
    /// Virtual-time nanoseconds of storage random reads (mirrors the
    /// `storage_read_latency_ns` histogram sum).
    ReadWaitNanos = 7,
    /// Virtual-time nanoseconds of WAL append+flush waits (mirrors the
    /// `wal_flush_latency_ns` histogram sum).
    WalWaitNanos = 8,
    /// Virtual-time nanoseconds of admission queue wait (mirrors the
    /// `admit_queue_wait_latency_ns` histogram sum).
    AdmitWaitNanos = 9,
    /// Retry attempts taken by `RetryPolicy` backoff loops.
    Retries = 10,
    /// Delta merges crossed: leaf scans that had to consolidate pending
    /// deltas over the base page.
    DeltaMerges = 11,
    /// Expansion hops truncated by the degraded-mode cost ceiling
    /// (mirrors `query_hop_truncations_total`).
    HopsTruncated = 12,
}

const COST_DIMS: usize = 13;

#[derive(Debug, Default)]
struct LedgerCells {
    dims: [AtomicU64; COST_DIMS],
}

thread_local! {
    /// Innermost-wins stack of installed ledgers for this thread.
    static ACTIVE_LEDGERS: RefCell<Vec<Arc<LedgerCells>>> = const { RefCell::new(Vec::new()) };
}

/// Adds `n` to dimension `dim` of the innermost ledger installed on this
/// thread, if any. Charge sites call this unconditionally; with no ledger
/// active it is one thread-local read.
pub fn charge(dim: CostDim, n: u64) {
    ACTIVE_LEDGERS.with(|stack| {
        if let Some(cells) = stack.borrow().last() {
            cells.dims[dim as usize].fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// True when a ledger is installed on this thread (test/debug aid).
pub fn ledger_active() -> bool {
    ACTIVE_LEDGERS.with(|stack| !stack.borrow().is_empty())
}

/// Per-request attribution counters. Clone is cheap (Arc); clones share
/// the cells, so a ledger can be held by the request and read elsewhere.
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    cells: Arc<LedgerCells>,
}

impl CostLedger {
    /// A zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `dim` directly (bypassing the thread-local lookup).
    pub fn charge(&self, dim: CostDim, n: u64) {
        self.cells.dims[dim as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of one dimension.
    pub fn get(&self, dim: CostDim) -> u64 {
        self.cells.dims[dim as usize].load(Ordering::Relaxed)
    }

    /// Installs this ledger as the innermost attribution target on the
    /// current thread until the guard drops. Install/uninstall pairs nest
    /// (charges always go to the innermost ledger only, so sums over
    /// disjoint ledgers never double-count).
    pub fn install(&self) -> LedgerGuard {
        ACTIVE_LEDGERS.with(|stack| stack.borrow_mut().push(Arc::clone(&self.cells)));
        LedgerGuard {
            _not_send: PhantomData,
        }
    }

    /// Point-in-time copy of every dimension.
    pub fn snapshot(&self) -> CostSnapshot {
        let d = |dim: CostDim| self.get(dim);
        CostSnapshot {
            bytes_scanned: d(CostDim::BytesScanned),
            csr_segments: d(CostDim::CsrSegments),
            csr_hits: d(CostDim::CsrHits),
            cache_hits: d(CostDim::CacheHits),
            cache_misses: d(CostDim::CacheMisses),
            storage_reads: d(CostDim::StorageReads),
            storage_read_bytes: d(CostDim::StorageReadBytes),
            read_wait_nanos: d(CostDim::ReadWaitNanos),
            wal_wait_nanos: d(CostDim::WalWaitNanos),
            admit_wait_nanos: d(CostDim::AdmitWaitNanos),
            retries: d(CostDim::Retries),
            delta_merges: d(CostDim::DeltaMerges),
            hops_truncated: d(CostDim::HopsTruncated),
        }
    }
}

/// Uninstalls the ledger pushed by [`CostLedger::install`] on drop.
/// Deliberately `!Send`: a ledger must be uninstalled on the thread that
/// installed it.
pub struct LedgerGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for LedgerGuard {
    fn drop(&mut self) {
        ACTIVE_LEDGERS.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Serializable point-in-time copy of a [`CostLedger`], one named field
/// per [`CostDim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostSnapshot {
    /// Adjacency bytes scanned.
    pub bytes_scanned: u64,
    /// Distinct sealed segments touched by adjacency scans.
    pub csr_segments: u64,
    /// Leaf scans served from a packed CSR segment.
    pub csr_hits: u64,
    /// Page-cache hits.
    pub cache_hits: u64,
    /// Page-cache misses.
    pub cache_misses: u64,
    /// Random reads that reached storage.
    pub storage_reads: u64,
    /// Bytes returned by storage reads.
    pub storage_read_bytes: u64,
    /// Virtual-time storage read wait (ns).
    pub read_wait_nanos: u64,
    /// Virtual-time WAL flush wait (ns).
    pub wal_wait_nanos: u64,
    /// Virtual-time admission queue wait (ns).
    pub admit_wait_nanos: u64,
    /// Retry attempts taken by backoff loops.
    pub retries: u64,
    /// Delta merges crossed by scans.
    pub delta_merges: u64,
    /// Expansion hops truncated by the degraded-mode ceiling.
    pub hops_truncated: u64,
}

impl CostSnapshot {
    /// Per-dimension deltas from `earlier` to `self` (saturating).
    pub fn delta_since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            bytes_scanned: self.bytes_scanned.saturating_sub(earlier.bytes_scanned),
            csr_segments: self.csr_segments.saturating_sub(earlier.csr_segments),
            csr_hits: self.csr_hits.saturating_sub(earlier.csr_hits),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            storage_reads: self.storage_reads.saturating_sub(earlier.storage_reads),
            storage_read_bytes: self
                .storage_read_bytes
                .saturating_sub(earlier.storage_read_bytes),
            read_wait_nanos: self.read_wait_nanos.saturating_sub(earlier.read_wait_nanos),
            wal_wait_nanos: self.wal_wait_nanos.saturating_sub(earlier.wal_wait_nanos),
            admit_wait_nanos: self
                .admit_wait_nanos
                .saturating_sub(earlier.admit_wait_nanos),
            retries: self.retries.saturating_sub(earlier.retries),
            delta_merges: self.delta_merges.saturating_sub(earlier.delta_merges),
            hops_truncated: self.hops_truncated.saturating_sub(earlier.hops_truncated),
        }
    }

    /// Adds `other` into this snapshot, dimension by dimension.
    pub fn add(&mut self, other: &CostSnapshot) {
        self.bytes_scanned += other.bytes_scanned;
        self.csr_segments += other.csr_segments;
        self.csr_hits += other.csr_hits;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.storage_reads += other.storage_reads;
        self.storage_read_bytes += other.storage_read_bytes;
        self.read_wait_nanos += other.read_wait_nanos;
        self.wal_wait_nanos += other.wal_wait_nanos;
        self.admit_wait_nanos += other.admit_wait_nanos;
        self.retries += other.retries;
        self.delta_merges += other.delta_merges;
        self.hops_truncated += other.hops_truncated;
    }

    /// Modelled virtual-time cost of the request: the waits it actually
    /// accrued (admission + WAL + storage reads) plus [`SEGMENT_SCAN_NS`]
    /// per adjacency segment touched and 1 ns per adjacency byte streamed.
    /// The slow-query log ranks by this.
    pub fn modelled_cost_ns(&self) -> u64 {
        self.admit_wait_nanos
            + self.wal_wait_nanos
            + self.read_wait_nanos
            + self.csr_segments * SEGMENT_SCAN_NS
            + self.bytes_scanned
    }
}

/// Injectable virtual-time source for span timestamps. Wraps `Fn() -> u64`
/// (nanoseconds) so crates without a native `SimClock` (the query
/// executor) can still stamp spans; [`VirtualClock::zero`] is the no-clock
/// fallback used by pure in-memory tests.
#[derive(Clone)]
pub struct VirtualClock(Arc<dyn Fn() -> u64 + Send + Sync>);

impl VirtualClock {
    /// Wraps a nanosecond source (usually a `SimClock::now` closure).
    pub fn new(now: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        VirtualClock(Arc::new(now))
    }

    /// A clock pinned at 0 — spans carry structure and costs but no times.
    pub fn zero() -> Self {
        VirtualClock(Arc::new(|| 0))
    }

    /// Current virtual-time nanoseconds.
    pub fn now(&self) -> u64 {
        (self.0)()
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::zero()
    }
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualClock").finish_non_exhaustive()
    }
}

/// One attribute on a span (numeric, like trace-event payloads).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanAttr {
    /// Attribute key (`frontier`, `emitted`, `pushdown`, ...).
    pub key: String,
    /// Attribute value.
    pub value: u64,
}

/// One finished span: parent links make the flat list a tree. `cost` is
/// the ledger delta observed while the span was open — inclusive of child
/// spans, like wall time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span id, unique within its trace.
    pub id: u64,
    /// Parent span id; `None` for the root.
    pub parent: Option<u64>,
    /// Span name (`query`, `hop0`, `hop1`, ...).
    pub name: String,
    /// Virtual-time nanoseconds at open.
    pub start_nanos: u64,
    /// Virtual-time nanoseconds at finish.
    pub end_nanos: u64,
    /// Numeric attributes set while the span was open.
    pub attrs: Vec<SpanAttr>,
    /// Attribution accrued while the span was open.
    pub cost: CostSnapshot,
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// One request's tracing state: a process-unique trace id, its
/// [`CostLedger`], a span-id allocator, and the finished-span list.
#[derive(Debug)]
pub struct TraceContext {
    trace_id: u64,
    clock: VirtualClock,
    ledger: CostLedger,
    next_span_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceContext {
    /// A fresh context with a process-unique trace id.
    pub fn new(clock: VirtualClock) -> Self {
        TraceContext {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            clock,
            ledger: CostLedger::new(),
            next_span_id: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The process-unique trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The request's attribution ledger (install it before executing).
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Opens a span. Spans record themselves on [`Span::finish`]; a span
    /// dropped without finishing is discarded.
    pub fn start_span(&self, name: &str, parent: Option<u64>) -> Span<'_> {
        Span {
            ctx: self,
            id: self.next_span_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name: name.to_string(),
            start_nanos: self.clock.now(),
            start_cost: self.ledger.snapshot(),
            attrs: Vec::new(),
        }
    }

    /// Finished spans so far, in finish order.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans.lock())
    }
}

/// An open span. Set attributes while it is open; call [`Span::finish`]
/// to record it on its [`TraceContext`].
#[derive(Debug)]
pub struct Span<'a> {
    ctx: &'a TraceContext,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_nanos: u64,
    start_cost: CostSnapshot,
    attrs: Vec<SpanAttr>,
}

impl Span<'_> {
    /// This span's id (for parenting children).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Sets (or overwrites) a numeric attribute.
    pub fn set_attr(&mut self, key: &str, value: u64) {
        match self.attrs.iter_mut().find(|a| a.key == key) {
            Some(attr) => attr.value = value,
            None => self.attrs.push(SpanAttr {
                key: key.to_string(),
                value,
            }),
        }
    }

    /// Closes the span: stamps the end time, computes the ledger delta
    /// accrued since open, and records the [`SpanRecord`].
    pub fn finish(self) {
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name.clone(),
            start_nanos: self.start_nanos,
            end_nanos: self.ctx.clock.now(),
            attrs: self.attrs.clone(),
            cost: self.ctx.ledger.snapshot().delta_since(&self.start_cost),
        };
        self.ctx.spans.lock().push(record);
    }
}

/// A profiled query: the serializable span tree plus the request's total
/// attribution — what `Executor::run_profiled*` returns and what the
/// [`SlowQueryLog`] keeps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryProfile {
    /// Process-unique trace id.
    pub trace_id: u64,
    /// The query text (or plan label).
    pub query: String,
    /// Ranking key: [`CostSnapshot::modelled_cost_ns`] of `cost`.
    pub modelled_cost_ns: u64,
    /// The request's total attribution (the root span's cost).
    pub cost: CostSnapshot,
    /// Finished spans; parent links encode the tree (root has
    /// `parent: None`).
    pub spans: Vec<SpanRecord>,
}

impl QueryProfile {
    /// The root span, if recorded.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Direct children of span `id`, in finish order.
    pub fn children(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Per-hop spans (children of the root), in hop order.
    pub fn hop_spans(&self) -> Vec<&SpanRecord> {
        let Some(root) = self.root() else {
            return Vec::new();
        };
        let mut hops = self.children(root.id);
        hops.sort_by_key(|s| s.id);
        hops
    }
}

struct SlowLogInner {
    capacity: usize,
    entries: Mutex<Vec<QueryProfile>>,
    recorded: Counter,
    evicted: Counter,
    occupancy: Gauge,
    worst_cost: Gauge,
}

/// Bounded keep-K-worst log of [`QueryProfile`]s ranked by modelled cost.
/// Clone shares the log. Occupancy, worst cost, and record/evict totals
/// are mirrored into the registry the log was built with (`slow_query_*`
/// names), so the existing Prometheus/JSON exporters pick them up.
#[derive(Clone)]
pub struct SlowQueryLog {
    inner: Arc<SlowLogInner>,
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.inner.entries.lock().len())
            .finish()
    }
}

impl SlowQueryLog {
    /// A log keeping the `capacity` worst profiles, with metrics detached
    /// (a private registry).
    pub fn new(capacity: usize) -> Self {
        Self::with_registry(capacity, &MetricRegistry::new())
    }

    /// A log keeping the `capacity` worst profiles, mirroring its
    /// `slow_query_*` metrics into `registry`.
    pub fn with_registry(capacity: usize, registry: &MetricRegistry) -> Self {
        SlowQueryLog {
            inner: Arc::new(SlowLogInner {
                capacity: capacity.max(1),
                entries: Mutex::new(Vec::new()),
                recorded: registry.counter(names::SLOW_QUERY_RECORDED_TOTAL),
                evicted: registry.counter(names::SLOW_QUERY_EVICTED_TOTAL),
                occupancy: registry.gauge(names::SLOW_QUERY_LOG_ENTRIES),
                worst_cost: registry.gauge(names::SLOW_QUERY_WORST_COST_NS),
            }),
        }
    }

    /// Offers a profile: kept if the log has room or the profile costs
    /// more than the current cheapest entry (which is then evicted).
    pub fn offer(&self, profile: QueryProfile) {
        self.inner.recorded.inc();
        let mut entries = self.inner.entries.lock();
        if entries.len() == self.inner.capacity {
            // Full: the cheapest entry yields only to a costlier profile.
            let (idx, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.modelled_cost_ns)
                .expect("capacity >= 1");
            if entries[idx].modelled_cost_ns >= profile.modelled_cost_ns {
                self.inner.evicted.inc();
                return;
            }
            entries.swap_remove(idx);
            self.inner.evicted.inc();
        }
        entries.push(profile);
        self.inner.occupancy.set(entries.len() as i64);
        let worst = entries
            .iter()
            .map(|p| p.modelled_cost_ns)
            .max()
            .unwrap_or(0);
        self.inner.worst_cost.set(worst.min(i64::MAX as u64) as i64);
    }

    /// The kept profiles, costliest first.
    pub fn entries(&self) -> Vec<QueryProfile> {
        let mut out = self.inner.entries.lock().clone();
        out.sort_by_key(|p| std::cmp::Reverse(p.modelled_cost_ns));
        out
    }

    /// Profiles offered so far.
    pub fn recorded(&self) -> u64 {
        self.inner.recorded.get()
    }

    /// Offers that displaced an entry or were dropped as too cheap.
    pub fn evicted(&self) -> u64 {
        self.inner.evicted.get()
    }

    /// Maximum number of kept profiles.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// The kept profiles as a JSON value (costliest first) — the JSON
    /// export surface next to [`crate::export::prometheus_text`].
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(&self.entries()).unwrap_or(serde_json::Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValueExt;

    #[test]
    fn charges_reach_only_the_innermost_installed_ledger() {
        let outer = CostLedger::new();
        let inner = CostLedger::new();
        charge(CostDim::CacheHits, 5); // no ledger active: dropped
        {
            let _o = outer.install();
            charge(CostDim::CacheHits, 1);
            {
                let _i = inner.install();
                charge(CostDim::CacheHits, 2);
                assert!(ledger_active());
            }
            charge(CostDim::BytesScanned, 7);
        }
        assert!(!ledger_active());
        assert_eq!(outer.get(CostDim::CacheHits), 1);
        assert_eq!(outer.get(CostDim::BytesScanned), 7);
        assert_eq!(inner.get(CostDim::CacheHits), 2);
        assert_eq!(inner.get(CostDim::BytesScanned), 0);
    }

    #[test]
    fn snapshot_delta_add_and_modelled_cost() {
        let ledger = CostLedger::new();
        ledger.charge(CostDim::CsrSegments, 2);
        ledger.charge(CostDim::BytesScanned, 100);
        let first = ledger.snapshot();
        ledger.charge(CostDim::CsrSegments, 3);
        ledger.charge(CostDim::AdmitWaitNanos, 400);
        let second = ledger.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.csr_segments, 3);
        assert_eq!(delta.bytes_scanned, 0);
        assert_eq!(delta.admit_wait_nanos, 400);
        let mut sum = first;
        sum.add(&delta);
        assert_eq!(sum, second);
        assert_eq!(
            second.modelled_cost_ns(),
            400 + 5 * SEGMENT_SCAN_NS + 100,
            "waits + per-segment + per-byte model"
        );
    }

    #[test]
    fn span_tree_records_parent_links_times_and_cost_deltas() {
        let tick = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&tick);
        let ctx = TraceContext::new(VirtualClock::new(move || {
            t.fetch_add(10, Ordering::Relaxed)
        }));
        let _guard = ctx.ledger().install();
        let root = ctx.start_span("query", None);
        let root_id = root.id();
        let mut hop = ctx.start_span("hop0", Some(root_id));
        hop.set_attr("frontier", 1);
        hop.set_attr("frontier", 3); // overwrite, not duplicate
        charge(CostDim::BytesScanned, 64);
        hop.finish();
        charge(CostDim::BytesScanned, 36);
        root.finish();
        let spans = ctx.take_spans();
        assert_eq!(spans.len(), 2);
        let hop = &spans[0];
        let root = &spans[1];
        assert_eq!(hop.parent, Some(root.id));
        assert_eq!(root.parent, None);
        assert!(hop.end_nanos > hop.start_nanos, "virtual clock advanced");
        assert_eq!(
            hop.attrs,
            vec![SpanAttr {
                key: "frontier".into(),
                value: 3
            }]
        );
        assert_eq!(hop.cost.bytes_scanned, 64, "only while the span was open");
        assert_eq!(root.cost.bytes_scanned, 100, "inclusive of children");
        assert!(ctx.take_spans().is_empty(), "take drains");
    }

    fn profile(cost: u64) -> QueryProfile {
        QueryProfile {
            trace_id: cost,
            query: format!("q{cost}"),
            modelled_cost_ns: cost,
            cost: CostSnapshot::default(),
            spans: Vec::new(),
        }
    }

    #[test]
    fn slow_log_keeps_k_worst_and_mirrors_metrics() {
        let registry = MetricRegistry::new();
        let log = SlowQueryLog::with_registry(2, &registry);
        for cost in [50, 10, 70, 30, 60] {
            log.offer(profile(cost));
        }
        let kept: Vec<u64> = log.entries().iter().map(|p| p.modelled_cost_ns).collect();
        assert_eq!(kept, vec![70, 60], "two worst, costliest first");
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.evicted(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::SLOW_QUERY_RECORDED_TOTAL), Some(5));
        assert_eq!(snap.counter(names::SLOW_QUERY_EVICTED_TOTAL), Some(3));
        assert_eq!(snap.gauge(names::SLOW_QUERY_LOG_ENTRIES), Some(2));
        assert_eq!(snap.gauge(names::SLOW_QUERY_WORST_COST_NS), Some(70));
        let json = log.to_json();
        let arr = json.as_array().expect("entries serialize as an array");
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].as_object().unwrap().get("query").unwrap().as_str(),
            Some("q70")
        );
    }
}
