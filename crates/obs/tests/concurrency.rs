//! Concurrency property: recording from 8 threads at once must be
//! indistinguishable from recording the same samples sequentially — the
//! histogram is lock-free and loses nothing under contention.

use bg3_obs::{LatencyHistogram, MetricRegistry};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_recording_equals_sequential_sum(
        samples in proptest::collection::vec(0u64..2_000_000_000u64, 64..256)
    ) {
        let sequential = LatencyHistogram::new();
        for &v in &samples {
            sequential.record(v);
        }

        let concurrent = Arc::new(LatencyHistogram::new());
        let threads = 8;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let hist = Arc::clone(&concurrent);
                // Strided split: every thread gets a distinct subset whose
                // union is exactly `samples`.
                let mine: Vec<u64> = samples
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                std::thread::spawn(move || {
                    for v in mine {
                        hist.record(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }

        prop_assert_eq!(concurrent.snapshot(), sequential.snapshot());
    }

    #[test]
    fn concurrent_counters_sum_exactly(
        increments in proptest::collection::vec(1u64..1_000u64, 8..64)
    ) {
        let reg = MetricRegistry::new();
        let expected: u64 = increments.iter().sum();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let counter = reg.counter("ops_total");
                let mine: Vec<u64> = increments
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(8)
                    .collect();
                std::thread::spawn(move || {
                    for n in mine {
                        counter.add(n);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("counter thread");
        }
        prop_assert_eq!(reg.snapshot().counter("ops_total"), Some(expected));
    }
}
