//! Concurrency property: recording from 8 threads at once must be
//! indistinguishable from recording the same samples sequentially — the
//! histogram is lock-free and loses nothing under contention.

use bg3_obs::span::{charge, CostDim, TraceContext, VirtualClock};
use bg3_obs::{LatencyHistogram, MetricRegistry};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_recording_equals_sequential_sum(
        samples in proptest::collection::vec(0u64..2_000_000_000u64, 64..256)
    ) {
        let sequential = LatencyHistogram::new();
        for &v in &samples {
            sequential.record(v);
        }

        let concurrent = Arc::new(LatencyHistogram::new());
        let threads = 8;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let hist = Arc::clone(&concurrent);
                // Strided split: every thread gets a distinct subset whose
                // union is exactly `samples`.
                let mine: Vec<u64> = samples
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                std::thread::spawn(move || {
                    for v in mine {
                        hist.record(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }

        prop_assert_eq!(concurrent.snapshot(), sequential.snapshot());
    }

    #[test]
    fn concurrent_counters_sum_exactly(
        increments in proptest::collection::vec(1u64..1_000u64, 8..64)
    ) {
        let reg = MetricRegistry::new();
        let expected: u64 = increments.iter().sum();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let counter = reg.counter("ops_total");
                let mine: Vec<u64> = increments
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(8)
                    .collect();
                std::thread::spawn(move || {
                    for n in mine {
                        counter.add(n);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("counter thread");
        }
        prop_assert_eq!(reg.snapshot().counter("ops_total"), Some(expected));
    }

    /// Spans recording histogram samples from 8 real threads (one
    /// per-thread registry each) must merge to the same snapshot no
    /// matter the merge order — merge is deterministic and loses nothing.
    #[test]
    fn span_recording_from_8_threads_merges_deterministically(
        samples in proptest::collection::vec(1u64..2_000_000_000u64, 64..256)
    ) {
        let threads = 8;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mine: Vec<u64> = samples
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                std::thread::spawn(move || {
                    // Each thread runs its own profiled "request": a
                    // ledger installed thread-locally, a span tree, and a
                    // private registry it records span costs into.
                    let reg = MetricRegistry::new();
                    let ctx = TraceContext::new(VirtualClock::zero());
                    let guard = ctx.ledger().install();
                    let span = ctx.start_span("query", None);
                    let hist = reg.histogram("query_profile_cost_latency_ns");
                    for &v in &mine {
                        charge(CostDim::ReadWaitNanos, v);
                        hist.record(v);
                    }
                    span.finish();
                    drop(guard);
                    let total: u64 = mine.iter().sum();
                    assert_eq!(
                        ctx.ledger().get(CostDim::ReadWaitNanos),
                        total,
                        "TLS ledger isolated per thread"
                    );
                    let spans = ctx.take_spans();
                    assert_eq!(spans.len(), 1);
                    assert_eq!(spans[0].cost.read_wait_nanos, total);
                    reg.snapshot()
                })
            })
            .collect();
        let snaps: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("span thread"))
            .collect();

        // Merge in two different orders; both must equal each other and
        // carry exactly the sequential recording of all samples.
        let mut forward = bg3_obs::MetricsSnapshot::default();
        for s in &snaps {
            forward.merge(s);
        }
        let mut reverse = bg3_obs::MetricsSnapshot::default();
        for s in snaps.iter().rev() {
            reverse.merge(s);
        }
        prop_assert_eq!(&forward, &reverse);

        let sequential = LatencyHistogram::new();
        for &v in &samples {
            sequential.record(v);
        }
        prop_assert_eq!(
            forward.histogram("query_profile_cost_latency_ns"),
            Some(&sequential.snapshot())
        );
    }
}
