//! Logical mutation events emitted by a Bw-tree.
//!
//! The sync layer (bg3-sync) installs a [`TreeEventListener`] on the RW
//! node's trees and converts each event into a WAL record, which is how the
//! "entire Bw-tree split process" of Fig. 7 gets logged (LSNs 30–32 in the
//! paper's example). Keeping the tree decoupled from the WAL lets the same
//! tree code run standalone (micro-benchmarks) or replicated.

use std::sync::Arc;

/// One logical mutation, emitted after the corresponding flush succeeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeEvent {
    /// `key` now maps to `value` on `page`.
    Upsert {
        page: u64,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    /// `key` was deleted from `page`.
    Delete { page: u64, key: Vec<u8> },
    /// `page` was consolidated; `image` is its full new base-page image.
    Consolidate { page: u64, image: Vec<u8> },
    /// `left` split: keys `>= separator` moved to new page `right`, whose
    /// full image is `right_image`. `left_image` is the remaining half.
    Split {
        left: u64,
        right: u64,
        separator: Vec<u8>,
        left_image: Vec<u8>,
        right_image: Vec<u8>,
    },
    /// Emitted by the *forest* (not a tree) once a split-out commits: the
    /// tree the event is reported under is now the dedicated tree for
    /// `group`. Ordered after the copied entries and INIT-tree deletes.
    ForestSplitOut { group: Vec<u8> },
}

/// Observer of tree mutations. Implementations must be cheap: they run on
/// the write path under the tree latch.
pub trait TreeEventListener: Send + Sync {
    /// Called once per logical mutation, in commit order for a given tree.
    fn on_event(&self, tree: u64, event: &TreeEvent);
}

/// A no-op listener (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullListener;

impl TreeEventListener for NullListener {
    fn on_event(&self, _tree: u64, _event: &TreeEvent) {}
}

/// A listener that records events in memory; used by tests and by the
/// command-forwarding baseline.
#[derive(Debug, Default)]
pub struct RecordingListener {
    events: parking_lot::Mutex<Vec<(u64, TreeEvent)>>,
}

impl RecordingListener {
    /// Creates an empty recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Drains and returns everything recorded so far.
    pub fn drain(&self) -> Vec<(u64, TreeEvent)> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TreeEventListener for RecordingListener {
    fn on_event(&self, tree: u64, event: &TreeEvent) {
        self.events.lock().push((tree, event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_listener_captures_in_order() {
        let rec = RecordingListener::new();
        assert!(rec.is_empty());
        rec.on_event(
            1,
            &TreeEvent::Upsert {
                page: 2,
                key: vec![1],
                value: vec![2],
            },
        );
        rec.on_event(
            1,
            &TreeEvent::Delete {
                page: 2,
                key: vec![1],
            },
        );
        assert_eq!(rec.len(), 2);
        let drained = rec.drain();
        assert!(matches!(drained[0].1, TreeEvent::Upsert { .. }));
        assert!(matches!(drained[1].1, TreeEvent::Delete { .. }));
        assert!(rec.is_empty());
    }

    #[test]
    fn null_listener_is_a_noop() {
        NullListener.on_event(
            0,
            &TreeEvent::Consolidate {
                page: 1,
                image: vec![],
            },
        );
    }
}
