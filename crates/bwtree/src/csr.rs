//! CSR-packed adjacency segments over sealed base pages.
//!
//! A clean leaf (no buffered deltas) holding fixed-width 8-byte item
//! tails — the forest's edge encoding: composite group prefix plus a
//! big-endian `dst` — packs into a columnar segment: one offsets array
//! per distinct group prefix, a contiguous `u64` neighbor run, and the
//! concatenated property bytes. A one-hop expansion over sealed data is
//! then a binary search for the group run plus one sequential scan,
//! instead of a per-edge key decode. Delta chains overlay on top: a page
//! with pending updates is served from its merged image and re-packs
//! lazily after the next consolidation (see `PageState::invalidate_csr`
//! call sites in `tree.rs`).
//!
//! Segments are built lazily on first batched scan and cached per page;
//! any base-page rewrite (consolidation, split, flush) drops the cache.
//! Trees whose keys do not fit the layout (an entry shorter than the
//! 8-byte tail, or group prefixes that interleave under full-key order)
//! are marked unsupported and always served from the merged image.

use std::ops::Range;
use std::sync::Arc;

/// Width of the fixed item tail: a big-endian `u64` neighbor id.
pub const CSR_ITEM_LEN: usize = 8;

/// Per-page CSR cache slot.
#[derive(Debug, Default)]
pub(crate) enum CsrCache {
    /// Not built yet (fresh or invalidated page).
    #[default]
    Unbuilt,
    /// The page's keys do not fit the CSR layout; never retry.
    Unsupported,
    /// Packed segment mirroring the page's current base image.
    Ready(Arc<CsrSegment>),
}

/// Visitor fed by batched prefix scans: called as
/// `(tag, item-tail, value)`; returning `false` ends that tag's scan
/// early (limit/count pushdown).
pub type BatchVisitor<'a> = dyn FnMut(usize, &[u8], &[u8]) -> bool + 'a;

/// Aggregate instrumentation of one batched scan: how many distinct
/// sealed segments (leaf pages) were touched, how many bytes were
/// scanned, and how many (prefix, leaf) visits were served by the CSR
/// fast path rather than a merged-image fallback.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Distinct leaf pages touched (consecutive prefixes sharing a leaf
    /// count it once — the batching win).
    pub segments_scanned: u64,
    /// Bytes scanned across CSR runs and merged-image entries.
    pub bytes_scanned: u64,
    /// (prefix, leaf) visits served from a packed segment.
    pub csr_hits: u64,
}

impl ScanOutcome {
    /// Accumulates another outcome into this one.
    pub fn absorb(&mut self, other: ScanOutcome) {
        self.segments_scanned += other.segments_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.csr_hits += other.csr_hits;
    }
}

/// A packed, columnar image of one clean base page: group-prefix runs
/// over a contiguous neighbor array plus concatenated properties.
#[derive(Debug)]
pub struct CsrSegment {
    /// `(group prefix, start, end)` — strictly increasing prefixes;
    /// `start..end` indexes `neighbors`/`prop_ends`.
    groups: Vec<(Vec<u8>, u32, u32)>,
    /// Big-endian-decoded 8-byte item tails, in key order.
    neighbors: Vec<u64>,
    /// `prop_ends[i]` is the exclusive end of entry `i`'s bytes in
    /// `props` (entry `i` starts at `prop_ends[i-1]`, or 0).
    prop_ends: Vec<u32>,
    /// Concatenated property bytes.
    props: Vec<u8>,
    /// The page's largest full key (empty for an empty page) — the
    /// "does this group continue into the next leaf" boundary check.
    max_key: Vec<u8>,
}

impl CsrSegment {
    /// Packs a sorted base-page image. Returns `None` when the page does
    /// not fit the layout: an entry shorter than [`CSR_ITEM_LEN`], or
    /// group prefixes that are non-monotonic under full-key order
    /// (possible for variable-length keys that are not length-prefixed
    /// composites).
    pub fn build(base: &[(Vec<u8>, Vec<u8>)]) -> Option<CsrSegment> {
        let mut groups: Vec<(Vec<u8>, u32, u32)> = Vec::new();
        let mut neighbors = Vec::with_capacity(base.len());
        let mut prop_ends = Vec::with_capacity(base.len());
        let mut props = Vec::new();
        for (key, value) in base {
            if key.len() < CSR_ITEM_LEN {
                return None;
            }
            let (prefix, item) = key.split_at(key.len() - CSR_ITEM_LEN);
            let dst = u64::from_be_bytes(item.try_into().expect("8-byte tail"));
            match groups.last_mut() {
                Some((p, _, end)) if p.as_slice() == prefix => *end += 1,
                Some((p, _, _)) if p.as_slice() > prefix => return None,
                _ => {
                    let at = neighbors.len() as u32;
                    groups.push((prefix.to_vec(), at, at + 1));
                }
            }
            neighbors.push(dst);
            props.extend_from_slice(value);
            prop_ends.push(props.len() as u32);
        }
        let max_key = base.last().map(|(k, _)| k.clone()).unwrap_or_default();
        Some(CsrSegment {
            groups,
            neighbors,
            prop_ends,
            props,
            max_key,
        })
    }

    /// The neighbor run for an exact group `prefix`, if present.
    pub fn run(&self, prefix: &[u8]) -> Option<Range<usize>> {
        let i = self
            .groups
            .binary_search_by(|(p, _, _)| p.as_slice().cmp(prefix))
            .ok()?;
        let (_, start, end) = &self.groups[i];
        Some(*start as usize..*end as usize)
    }

    /// The decoded neighbor id at index `i`.
    pub fn neighbor(&self, i: usize) -> u64 {
        self.neighbors[i]
    }

    /// The property bytes of entry `i`.
    pub fn props(&self, i: usize) -> &[u8] {
        let start = if i == 0 {
            0
        } else {
            self.prop_ends[i - 1] as usize
        };
        &self.props[start..self.prop_ends[i] as usize]
    }

    /// The page's largest full key; empty for an empty page.
    pub fn max_key(&self) -> &[u8] {
        &self.max_key
    }

    /// Number of packed entries.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the segment packs zero entries.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(prefix: &[u8], dst: u64, props: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let mut k = prefix.to_vec();
        k.extend_from_slice(&dst.to_be_bytes());
        (k, props.to_vec())
    }

    #[test]
    fn packs_runs_per_prefix() {
        let base = vec![
            entry(b"aa", 1, b"x"),
            entry(b"aa", 7, b"yy"),
            entry(b"bb", 2, b""),
        ];
        let seg = CsrSegment::build(&base).unwrap();
        assert_eq!(seg.len(), 3);
        let run = seg.run(b"aa").unwrap();
        assert_eq!(run, 0..2);
        assert_eq!(seg.neighbor(0), 1);
        assert_eq!(seg.neighbor(1), 7);
        assert_eq!(seg.props(1), b"yy");
        assert_eq!(seg.run(b"bb").unwrap(), 2..3);
        assert_eq!(seg.props(2), b"");
        assert!(seg.run(b"cc").is_none());
        assert_eq!(seg.max_key(), entry(b"bb", 2, b"").0.as_slice());
    }

    #[test]
    fn bare_item_keys_pack_as_one_empty_prefix_group() {
        let base = vec![entry(b"", 3, b"p"), entry(b"", 9, b"q")];
        let seg = CsrSegment::build(&base).unwrap();
        assert_eq!(seg.run(b"").unwrap(), 0..2);
    }

    #[test]
    fn short_keys_are_unsupported() {
        assert!(CsrSegment::build(&[(b"abc".to_vec(), Vec::new())]).is_none());
    }

    #[test]
    fn interleaved_prefixes_are_unsupported() {
        // Sorted by full key, but the 8-byte-tail prefixes go a, ab, a.
        let base = vec![
            entry(b"a", u64::from_be_bytes(*b"a_______"), b""),
            entry(b"ab", 1, b""),
            entry(b"a", u64::from_be_bytes(*b"zzzzzzzz"), b""),
        ];
        assert!(base.windows(2).all(|w| w[0].0 < w[1].0), "sorted input");
        assert!(CsrSegment::build(&base).is_none());
    }

    #[test]
    fn empty_page_packs_empty() {
        let seg = CsrSegment::build(&[]).unwrap();
        assert!(seg.is_empty());
        assert!(seg.run(b"").is_none());
        assert_eq!(seg.max_key(), b"");
    }
}
