//! # bg3-bwtree
//!
//! The Bw-tree at the heart of BG3's graph storage engine (§3.2 of the
//! paper). A Bw-tree keeps an immutable **base page** per logical page and
//! records updates as **delta** records, linked to the base through a
//! mapping table; both base and delta data are flushed to append-only
//! shared storage for durability.
//!
//! Two write paths are implemented, selected by [`WriteMode`]:
//!
//! * [`WriteMode::Traditional`] — the classic Bw-tree (and the SLED baseline
//!   of §4.3.1): every update appends a new delta to the page's chain; the
//!   chain is consolidated into a fresh base page after
//!   `consolidate_threshold` deltas. A cold read of a page with *n* deltas
//!   costs *1 + n* random storage reads.
//! * [`WriteMode::ReadOptimized`] — BG3's contribution (Algorithm 1): an
//!   incoming update is **merged with the page's existing delta** into a
//!   single new delta that points directly at the base page, so every page
//!   has at most one delta and a cold read costs at most 2 random reads.
//!   The merged delta is re-flushed each time, costing slightly more write
//!   bytes (Fig. 10 measures +9.3%), which is cheap because the flush is a
//!   sequential append.
//!
//! The tree exposes an event stream ([`TreeEvent`]) describing every logical
//! mutation — upserts, consolidations, splits — which the sync layer turns
//! into WAL records for RW→RO synchronization (§3.4).

pub mod config;
pub mod csr;
pub mod events;
pub mod page;
pub mod stats;
pub mod tag;
pub mod tree;

pub use config::{BwTreeConfig, WriteMode};
pub use csr::{BatchVisitor, CsrSegment, ScanOutcome, CSR_ITEM_LEN};
pub use events::{NullListener, RecordingListener, TreeEvent, TreeEventListener};
pub use page::{
    decode_base_page, decode_delta, encode_base_page, encode_delta, DeltaOp, Entries,
    PageCodecError,
};
pub use stats::{BwTreeStats, BwTreeStatsSnapshot};
pub use tag::PageTag;
pub use tree::{BwTree, FlushMode, FlushedPage, PageId, FIRST_LEAF};
