//! Per-tree operation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters describing one Bw-tree's activity.
#[derive(Debug, Default)]
pub struct BwTreeStats {
    pub(crate) writes: AtomicU64,
    pub(crate) reads: AtomicU64,
    pub(crate) delta_flushes: AtomicU64,
    pub(crate) base_flushes: AtomicU64,
    pub(crate) delta_merges: AtomicU64,
    pub(crate) consolidations: AtomicU64,
    pub(crate) splits: AtomicU64,
    pub(crate) cold_reads: AtomicU64,
    pub(crate) cold_read_ios: AtomicU64,
}

impl BwTreeStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> BwTreeStatsSnapshot {
        BwTreeStatsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            delta_flushes: self.delta_flushes.load(Ordering::Relaxed),
            base_flushes: self.base_flushes.load(Ordering::Relaxed),
            delta_merges: self.delta_merges.load(Ordering::Relaxed),
            consolidations: self.consolidations.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            cold_reads: self.cold_reads.load(Ordering::Relaxed),
            cold_read_ios: self.cold_read_ios.load(Ordering::Relaxed),
        }
    }
}

/// Copyable snapshot of [`BwTreeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BwTreeStatsSnapshot {
    /// Upsert + delete operations accepted.
    pub writes: u64,
    /// Point lookups served.
    pub reads: u64,
    /// Delta records flushed to the DELTA stream.
    pub delta_flushes: u64,
    /// Base pages flushed to the BASE stream.
    pub base_flushes: u64,
    /// Read-optimized delta merges performed (Algorithm 1 line 20).
    pub delta_merges: u64,
    /// Chain consolidations into a new base page.
    pub consolidations: u64,
    /// Structural leaf splits.
    pub splits: u64,
    /// Reads served by fetching from storage (cache miss or cache off).
    pub cold_reads: u64,
    /// Random storage reads those cold reads issued — `cold_read_ios /
    /// cold_reads` is the read-amplification factor of Fig. 9.
    pub cold_read_ios: u64,
}

impl BwTreeStatsSnapshot {
    /// Average random storage reads per cold lookup.
    pub fn read_amplification(&self) -> f64 {
        if self.cold_reads == 0 {
            0.0
        } else {
            self.cold_read_ios as f64 / self.cold_reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = BwTreeStats::default();
        BwTreeStats::bump(&s.writes);
        BwTreeStats::bump(&s.writes);
        BwTreeStats::add(&s.cold_read_ios, 4);
        BwTreeStats::bump(&s.cold_reads);
        let snap = s.snapshot();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.cold_read_ios, 4);
        assert!((snap.read_amplification() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn read_amplification_of_idle_tree_is_zero() {
        assert_eq!(BwTreeStatsSnapshot::default().read_amplification(), 0.0);
    }
}
