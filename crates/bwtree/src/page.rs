//! Page representations and their storage codec.
//!
//! A **base page** is an immutable sorted run of key/value entries. A
//! **delta** is a sorted batch of not-yet-consolidated operations. Both are
//! encoded to byte images before being appended to the shared store, so the
//! latency model and the I/O counters see realistic sizes.

use std::fmt;

/// A sorted run of key/value entries — the content of one base page.
pub type Entries = Vec<(Vec<u8>, Vec<u8>)>;

/// A single buffered operation inside a delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Insert or overwrite `key` with `value`.
    Put { key: Vec<u8>, value: Vec<u8> },
    /// Remove `key` (tombstone until consolidation).
    Delete { key: Vec<u8> },
}

impl DeltaOp {
    /// The key this operation applies to.
    pub fn key(&self) -> &[u8] {
        match self {
            DeltaOp::Put { key, .. } | DeltaOp::Delete { key } => key,
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn heap_size(&self) -> usize {
        match self {
            DeltaOp::Put { key, value } => key.len() + value.len(),
            DeltaOp::Delete { key } => key.len(),
        }
    }
}

/// Errors raised while decoding page images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageCodecError {
    /// Buffer ended early.
    Truncated,
    /// Unknown delta op tag.
    UnknownOp(u8),
}

impl fmt::Display for PageCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageCodecError::Truncated => write!(f, "truncated page image"),
            PageCodecError::UnknownOp(op) => write!(f, "unknown delta op tag {op}"),
        }
    }
}

impl std::error::Error for PageCodecError {}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PageCodecError> {
        if self.buf.len() - self.pos < n {
            return Err(PageCodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, PageCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PageCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, PageCodecError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Encodes a base page: `u32 count | (key, value)*` with length-prefixed
/// byte strings. Entries must be sorted by key (callers uphold this).
pub fn encode_base_page(entries: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        8 + entries
            .iter()
            .map(|(k, v)| k.len() + v.len() + 8)
            .sum::<usize>(),
    );
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (k, v) in entries {
        put_bytes(&mut out, k);
        put_bytes(&mut out, v);
    }
    out
}

/// Decodes a base page image.
pub fn decode_base_page(buf: &[u8]) -> Result<Entries, PageCodecError> {
    let mut c = Cursor { buf, pos: 0 };
    let count = c.u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let k = c.bytes()?;
        let v = c.bytes()?;
        entries.push((k, v));
    }
    if !c.finished() {
        return Err(PageCodecError::Truncated);
    }
    Ok(entries)
}

/// Encodes a delta: `u32 count | (u8 tag, key, [value])*`.
pub fn encode_delta(ops: &[DeltaOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + ops.iter().map(|o| o.heap_size() + 9).sum::<usize>());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            DeltaOp::Put { key, value } => {
                out.push(0);
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            DeltaOp::Delete { key } => {
                out.push(1);
                put_bytes(&mut out, key);
            }
        }
    }
    out
}

/// Decodes a delta image.
pub fn decode_delta(buf: &[u8]) -> Result<Vec<DeltaOp>, PageCodecError> {
    let mut c = Cursor { buf, pos: 0 };
    let count = c.u32()? as usize;
    let mut ops = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let tag = c.u8()?;
        let op = match tag {
            0 => DeltaOp::Put {
                key: c.bytes()?,
                value: c.bytes()?,
            },
            1 => DeltaOp::Delete { key: c.bytes()? },
            other => return Err(PageCodecError::UnknownOp(other)),
        };
        ops.push(op);
    }
    if !c.finished() {
        return Err(PageCodecError::Truncated);
    }
    Ok(ops)
}

/// Applies `ops` (already deduplicated, any order) over `base` (sorted),
/// producing a new sorted entry list. Tombstones remove entries.
pub fn apply_ops(base: &[(Vec<u8>, Vec<u8>)], ops: &[DeltaOp]) -> Entries {
    let mut merged: Vec<(Vec<u8>, Vec<u8>)> = base.to_vec();
    for op in ops {
        match op {
            DeltaOp::Put { key, value } => {
                match merged.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => merged[i].1 = value.clone(),
                    Err(i) => merged.insert(i, (key.clone(), value.clone())),
                }
            }
            DeltaOp::Delete { key } => {
                if let Ok(i) = merged.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    merged.remove(i);
                }
            }
        }
    }
    merged
}

/// Merges `older` then `newer` op lists, keeping only the latest op per key.
/// This is the delta-merging step of the read-optimized write path
/// (Algorithm 1 line 20): the result is the page's single delta.
pub fn merge_ops(older: &[DeltaOp], newer: &[DeltaOp]) -> Vec<DeltaOp> {
    let mut out: Vec<DeltaOp> = Vec::with_capacity(older.len() + newer.len());
    for op in older.iter().chain(newer.iter()) {
        match out.binary_search_by(|existing| existing.key().cmp(op.key())) {
            Ok(i) => out[i] = op.clone(),
            Err(i) => out.insert(i, op.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(k: &str, v: &str) -> (Vec<u8>, Vec<u8>) {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    fn put(k: &str, v: &str) -> DeltaOp {
        DeltaOp::Put {
            key: k.as_bytes().to_vec(),
            value: v.as_bytes().to_vec(),
        }
    }

    fn del(k: &str) -> DeltaOp {
        DeltaOp::Delete {
            key: k.as_bytes().to_vec(),
        }
    }

    #[test]
    fn base_page_round_trip() {
        let entries = vec![kv("a", "1"), kv("b", "2"), kv("c", "3")];
        let img = encode_base_page(&entries);
        assert_eq!(decode_base_page(&img).unwrap(), entries);
        assert_eq!(decode_base_page(&encode_base_page(&[])).unwrap(), vec![]);
    }

    #[test]
    fn delta_round_trip() {
        let ops = vec![put("a", "1"), del("b"), put("c", "33")];
        let img = encode_delta(&ops);
        assert_eq!(decode_delta(&img).unwrap(), ops);
    }

    #[test]
    fn truncated_images_error() {
        let img = encode_base_page(&[kv("key", "value")]);
        for cut in 0..img.len() {
            assert!(decode_base_page(&img[..cut]).is_err(), "cut {cut}");
        }
        let dimg = encode_delta(&[put("k", "v")]);
        for cut in 0..dimg.len() {
            assert!(decode_delta(&dimg[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_op_tag_errors() {
        let mut img = encode_delta(&[del("x")]);
        img[4] = 7;
        assert_eq!(decode_delta(&img), Err(PageCodecError::UnknownOp(7)));
    }

    #[test]
    fn trailing_bytes_error() {
        let mut img = encode_base_page(&[kv("a", "b")]);
        img.push(0);
        assert_eq!(decode_base_page(&img), Err(PageCodecError::Truncated));
    }

    #[test]
    fn apply_ops_overwrites_inserts_and_deletes() {
        let base = vec![kv("b", "old"), kv("d", "keep")];
        let merged = apply_ops(&base, &[put("a", "new"), put("b", "upd"), del("d")]);
        assert_eq!(merged, vec![kv("a", "new"), kv("b", "upd")]);
    }

    #[test]
    fn apply_ops_delete_of_absent_key_is_noop() {
        let base = vec![kv("a", "1")];
        assert_eq!(apply_ops(&base, &[del("zz")]), base);
    }

    #[test]
    fn merge_ops_keeps_latest_per_key() {
        let older = vec![put("a", "1"), del("b")];
        let newer = vec![put("b", "2"), put("a", "3")];
        let merged = merge_ops(&older, &newer);
        assert_eq!(merged, vec![put("a", "3"), put("b", "2")]);
    }

    #[test]
    fn merge_then_apply_equals_sequential_apply() {
        let base = vec![kv("k1", "v"), kv("k3", "v")];
        let older = vec![put("k2", "x"), del("k1")];
        let newer = vec![put("k1", "back"), put("k2", "y")];
        let sequential = apply_ops(&apply_ops(&base, &older), &newer);
        let merged = apply_ops(&base, &merge_ops(&older, &newer));
        assert_eq!(sequential, merged);
    }

    #[test]
    fn heap_size_accounts_key_and_value() {
        assert_eq!(put("ab", "cde").heap_size(), 5);
        assert_eq!(del("ab").heap_size(), 2);
    }
}
