//! The Bw-tree proper.
//!
//! ## Structure
//!
//! A tree is a routing table (the in-memory equivalent of the paper's Root
//! and Meta nodes, §2.2) over a set of logical **leaf pages**. Each leaf has
//! a durable representation on the shared store — one base-page record plus
//! zero or more delta records — and an authoritative in-memory image. The
//! mapping from page id to storage addresses is the tree's mapping table.
//!
//! ## Write paths (Algorithm 1)
//!
//! With [`WriteMode::Traditional`], each update appends one delta record to
//! the page's chain. With [`WriteMode::ReadOptimized`], the update is merged
//! with the page's existing delta into a single new delta that points
//! directly at the base page, keeping the invariant *at most one delta per
//! page*; the replaced delta record is invalidated on the store. Both modes
//! consolidate into a fresh base page after `consolidate_threshold` buffered
//! updates, and split leaves that outgrow `max_page_entries`.
//!
//! ## Flush modes
//!
//! * [`FlushMode::Synchronous`] — every write flushes its delta (or base)
//!   before returning. This is the configuration of the §4.3 storage
//!   micro-benchmarks.
//! * [`FlushMode::Deferred`] — writes mutate memory only and mark pages
//!   dirty; a background group-commit (driven by bg3-sync, Fig. 7 step (7))
//!   calls [`BwTree::flush_dirty`] to persist consolidated page images in
//!   batch. Durability before the flush is provided by the WAL.

use crate::config::{BwTreeConfig, WriteMode};
use crate::csr::{BatchVisitor, CsrCache, CsrSegment, ScanOutcome};
use crate::events::{NullListener, TreeEvent, TreeEventListener};
use crate::page::{
    apply_ops, decode_base_page, decode_delta, encode_base_page, encode_delta, DeltaOp, Entries,
};
use crate::stats::BwTreeStats;
use crate::tag::PageTag;
use bg3_storage::{
    AppendOnlyStore, CrashPoint, CrashSwitch, ErrorKind, PageAddr, StorageError, StorageOp,
    StorageResult, StreamId, TraceKind,
};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

/// Identifies a logical page within one tree. The first leaf of every tree
/// is always page 1, which lets a read-only replica bootstrap its routing
/// table from an empty state plus the WAL.
pub type PageId = u32;

/// The id of the initial leaf page of every tree.
pub const FIRST_LEAF: PageId = 1;

/// Whether writes flush synchronously or accumulate as dirty pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushMode {
    /// Flush delta/base records on every write (§4.3 micro-benchmarks).
    #[default]
    Synchronous,
    /// Accumulate dirty pages; [`BwTree::flush_dirty`] persists them in
    /// batch (group commit, §3.4 "I/O Efficiency").
    Deferred,
}

#[derive(Debug, Default)]
struct PageState {
    /// Durable base page record, if ever flushed.
    base_addr: Option<PageAddr>,
    /// Durable delta records, oldest first. In read-optimized mode this
    /// holds at most one element.
    delta_addrs: Vec<PageAddr>,
    /// Authoritative consolidated entries (sorted by key).
    base: Vec<(Vec<u8>, Vec<u8>)>,
    /// Updates buffered since the last consolidation. In read-optimized
    /// mode this is the content of the single merged delta (deduplicated);
    /// in traditional mode it is the concatenated chain, oldest first.
    pending: Vec<DeltaOp>,
    /// Number of updates buffered since the last consolidation (Algorithm 1
    /// `old_delta.count`).
    update_count: usize,
    /// Lazily built CSR packing of `base` (batched adjacency scans).
    /// Dropped whenever `base` is rewritten; pending deltas don't touch it
    /// because dirty pages are always served from the merged image.
    csr: parking_lot::Mutex<CsrCache>,
}

impl PageState {
    /// Merges one op into the (sorted, deduplicated) pending delta in
    /// place — the hot write path of the read-optimized mode, avoiding the
    /// full-chain clone `merge_ops` would do.
    fn merge_pending(&mut self, op: DeltaOp) {
        match self
            .pending
            .binary_search_by(|existing| existing.key().cmp(op.key()))
        {
            Ok(i) => self.pending[i] = op,
            Err(i) => self.pending.insert(i, op),
        }
    }

    /// Existence check without cloning the value (hot-path helper for the
    /// live-entry counter).
    fn contains(&self, key: &[u8]) -> bool {
        for op in self.pending.iter().rev() {
            match op {
                DeltaOp::Put { key: k, .. } if k.as_slice() == key => return true,
                DeltaOp::Delete { key: k } if k.as_slice() == key => return false,
                _ => {}
            }
        }
        self.base
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .is_ok()
    }

    fn lookup(&self, key: &[u8]) -> Option<Option<Vec<u8>>> {
        // Newest pending op for the key wins; fall through to the base.
        for op in self.pending.iter().rev() {
            match op {
                DeltaOp::Put { key: k, value } if k.as_slice() == key => {
                    return Some(Some(value.clone()))
                }
                DeltaOp::Delete { key: k } if k.as_slice() == key => return Some(None),
                _ => {}
            }
        }
        match self.base.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => Some(Some(self.base[i].1.clone())),
            Err(_) => None,
        }
    }

    /// Consolidated view of the page (base + pending applied).
    fn merged_entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        if self.pending.is_empty() {
            self.base.clone()
        } else {
            apply_ops(&self.base, &self.pending)
        }
    }

    /// Drops the packed segment. Must be called at every site that
    /// reassigns `base` (consolidation, split, flush, fresh install).
    fn invalidate_csr(&self) {
        *self.csr.lock() = CsrCache::Unbuilt;
    }

    /// The packed segment mirroring `base`, built on first use. `None`
    /// when the page's keys don't fit the CSR layout.
    fn csr_segment(&self) -> Option<Arc<CsrSegment>> {
        let mut slot = self.csr.lock();
        match &*slot {
            CsrCache::Ready(seg) => Some(Arc::clone(seg)),
            CsrCache::Unsupported => None,
            CsrCache::Unbuilt => match CsrSegment::build(&self.base) {
                Some(seg) => {
                    let seg = Arc::new(seg);
                    *slot = CsrCache::Ready(Arc::clone(&seg));
                    Some(seg)
                }
                None => {
                    *slot = CsrCache::Unsupported;
                    None
                }
            },
        }
    }

    fn heap_bytes(&self) -> usize {
        let base: usize = self.base.iter().map(|(k, v)| k.len() + v.len() + 48).sum();
        let pending: usize = self.pending.iter().map(|op| op.heap_size() + 40).sum();
        base + pending + std::mem::size_of::<PageState>()
    }
}

struct TreeInner {
    /// Separator key → leaf page covering keys `>=` separator (up to the
    /// next separator). Always contains the empty key.
    routing: BTreeMap<Vec<u8>, PageId>,
    pages: HashMap<PageId, PageState>,
    next_page: PageId,
    dirty: HashSet<PageId>,
}

impl TreeInner {
    fn leaf_for(&self, key: &[u8]) -> PageId {
        *self
            .routing
            .range::<[u8], _>((Bound::Unbounded, Bound::Included(key)))
            .next_back()
            .expect("routing always contains the empty separator")
            .1
    }
}

/// One page flushed by [`BwTree::flush_dirty`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushedPage {
    /// The page that was persisted.
    pub page: PageId,
    /// Its new base-page address on the shared store.
    pub addr: PageAddr,
}

/// A Bw-tree over an append-only shared store.
pub struct BwTree {
    id: u32,
    config: BwTreeConfig,
    flush_mode: FlushMode,
    store: AppendOnlyStore,
    stats: BwTreeStats,
    listener: Arc<dyn TreeEventListener>,
    /// Crash harness hook: [`CrashPoint::MidFlush`] fires inside the
    /// group-commit flush loop. Disarmed by default (zero-cost).
    crash: CrashSwitch,
    inner: RwLock<TreeInner>,
    /// Live entry count, maintained incrementally by the write paths so
    /// `entry_count` is O(1) (the forest consults it on every write).
    live_entries: std::sync::atomic::AtomicU64,
}

impl BwTree {
    /// Creates an empty tree with the default (no-op) event listener.
    pub fn new(id: u32, store: AppendOnlyStore, config: BwTreeConfig) -> Self {
        Self::with_listener(id, store, config, Arc::new(NullListener))
    }

    /// Creates an empty tree that reports mutations to `listener`.
    pub fn with_listener(
        id: u32,
        store: AppendOnlyStore,
        config: BwTreeConfig,
        listener: Arc<dyn TreeEventListener>,
    ) -> Self {
        let mut routing = BTreeMap::new();
        routing.insert(Vec::new(), FIRST_LEAF);
        let mut pages = HashMap::new();
        pages.insert(FIRST_LEAF, PageState::default());
        let flush_mode = config.flush_mode;
        BwTree {
            id,
            config,
            flush_mode,
            store,
            stats: BwTreeStats::default(),
            listener,
            crash: CrashSwitch::new(),
            inner: RwLock::new(TreeInner {
                routing,
                pages,
                next_page: FIRST_LEAF + 1,
                dirty: HashSet::new(),
            }),
            live_entries: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Switches the flush mode. Intended to be set once at construction
    /// time by the owning node.
    pub fn set_flush_mode(&mut self, mode: FlushMode) {
        self.flush_mode = mode;
    }

    /// Installs a shared crash switch (chaos harness). Intended to be set
    /// once at construction time by the owning node.
    pub fn set_crash_switch(&mut self, switch: CrashSwitch) {
        self.crash = switch;
    }

    /// The tree's crash switch (shared with whoever armed it).
    pub fn crash_switch(&self) -> &CrashSwitch {
        &self.crash
    }

    /// Assembles a tree from recovered state: a routing table and fully
    /// consolidated pages (entries + their durable base address, if any).
    /// Used by crash recovery (`bg3-sync::recovery`), which reconstructs
    /// pages from the shared mapping table plus WAL replay.
    ///
    /// `dirty` must list every page whose in-memory content is newer than
    /// its durable image (i.e. pages patched by WAL replay past the
    /// checkpoint horizon): they need re-flushing before the next horizon
    /// advance, or a second crash would lose the replayed content.
    pub fn assemble(
        id: u32,
        store: AppendOnlyStore,
        config: BwTreeConfig,
        listener: Arc<dyn TreeEventListener>,
        routing: BTreeMap<Vec<u8>, PageId>,
        pages: Vec<(PageId, Entries, Option<PageAddr>)>,
        dirty: Vec<PageId>,
    ) -> Self {
        assert!(
            routing.contains_key(&Vec::new()),
            "routing must cover the empty separator"
        );
        let live: usize = pages.iter().map(|(_, e, _)| e.len()).sum();
        let next_page = pages.iter().map(|(p, _, _)| *p).max().unwrap_or(FIRST_LEAF) + 1;
        let pages: HashMap<PageId, PageState> = pages
            .into_iter()
            .map(|(page, base, base_addr)| {
                (
                    page,
                    PageState {
                        base,
                        base_addr,
                        ..PageState::default()
                    },
                )
            })
            .collect();
        for leaf in routing.values() {
            assert!(pages.contains_key(leaf), "routing points at missing page");
        }
        let flush_mode = config.flush_mode;
        BwTree {
            id,
            config,
            flush_mode,
            store,
            stats: BwTreeStats::default(),
            listener,
            crash: CrashSwitch::new(),
            inner: RwLock::new(TreeInner {
                routing,
                pages,
                next_page,
                dirty: dirty.into_iter().collect(),
            }),
            live_entries: std::sync::atomic::AtomicU64::new(live as u64),
        }
    }

    /// This tree's id within the forest.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The tree's configuration.
    pub fn config(&self) -> &BwTreeConfig {
        &self.config
    }

    /// Operation counters.
    pub fn stats(&self) -> &BwTreeStats {
        &self.stats
    }

    fn tag(&self, page: PageId) -> u64 {
        PageTag {
            tree: self.id,
            page,
        }
        .encode()
    }

    /// Appends one record under the tree's retry policy: transient injected
    /// failures are retried with simulated-clock backoff; anything else
    /// (crashes, organic errors) surfaces immediately.
    fn append_retrying(&self, stream: StreamId, image: &[u8], tag: u64) -> StorageResult<PageAddr> {
        self.config.retry.run(self.store.clock(), || {
            self.store.append(stream, image, tag, self.config.ttl_nanos)
        })
    }

    /// Inserts or overwrites `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> StorageResult<()> {
        self.write(DeltaOp::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })
    }

    /// Deletes `key` (no-op if absent; a tombstone is still recorded).
    pub fn delete(&self, key: &[u8]) -> StorageResult<()> {
        self.write(DeltaOp::Delete { key: key.to_vec() })
    }

    fn write(&self, op: DeltaOp) -> StorageResult<()> {
        BwTreeStats::bump(&self.stats.writes);
        let mut inner = self.inner.write();
        let leaf = inner.leaf_for(op.key());
        let event = match &op {
            DeltaOp::Put { key, value } => TreeEvent::Upsert {
                page: leaf as u64,
                key: key.clone(),
                value: value.clone(),
            },
            DeltaOp::Delete { key } => TreeEvent::Delete {
                page: leaf as u64,
                key: key.clone(),
            },
        };
        // WAL-before-data: the listener (when it is the sync layer) appends
        // the log record before any page data reaches the store.
        self.listener.on_event(self.id as u64, &event);

        // Maintain the O(1) live-entry counter.
        let existed = inner
            .pages
            .get(&leaf)
            .expect("routed page exists")
            .contains(op.key());
        use std::sync::atomic::Ordering;
        match (&op, existed) {
            (DeltaOp::Put { .. }, false) => {
                self.live_entries.fetch_add(1, Ordering::Relaxed);
            }
            (DeltaOp::Delete { .. }, true) => {
                self.live_entries.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }

        match self.flush_mode {
            FlushMode::Deferred => self.write_deferred(&mut inner, leaf, op),
            FlushMode::Synchronous => self.write_synchronous(&mut inner, leaf, op),
        }
    }

    /// Deferred path: mutate memory, mark dirty; group commit persists later.
    fn write_deferred(
        &self,
        inner: &mut TreeInner,
        leaf: PageId,
        op: DeltaOp,
    ) -> StorageResult<()> {
        let state = inner.pages.get_mut(&leaf).expect("routed page exists");
        state.merge_pending(op);
        state.update_count += 1;
        if state.update_count > self.config.consolidate_threshold {
            state.base = state.merged_entries();
            state.pending.clear();
            state.update_count = 0;
            state.invalidate_csr();
            BwTreeStats::bump(&self.stats.consolidations);
        }
        inner.dirty.insert(leaf);
        self.maybe_split(inner, leaf)?;
        Ok(())
    }

    /// Synchronous path: Algorithm 1 of the paper.
    fn write_synchronous(
        &self,
        inner: &mut TreeInner,
        leaf: PageId,
        op: DeltaOp,
    ) -> StorageResult<()> {
        let tag = self.tag(leaf);
        let state = inner.pages.get_mut(&leaf).expect("routed page exists");

        if state.base_addr.is_none() && state.delta_addrs.is_empty() {
            // Lines 2-8: fresh page — install the value in the base page and
            // flush it.
            state.base = apply_ops(&state.base, std::slice::from_ref(&op));
            state.invalidate_csr();
            let image = encode_base_page(&state.base);
            let addr = self.append_retrying(StreamId::BASE, &image, tag)?;
            state.base_addr = Some(addr);
            BwTreeStats::bump(&self.stats.base_flushes);
            return self.maybe_split(inner, leaf);
        }

        if state.pending.is_empty() {
            // Lines 9-17: unmodified base — allocate a fresh one-op delta.
            state.pending.push(op.clone());
            state.update_count = 1;
            let image = encode_delta(std::slice::from_ref(&op));
            let addr = self.append_retrying(StreamId::DELTA, &image, tag)?;
            state.delta_addrs.push(addr);
            BwTreeStats::bump(&self.stats.delta_flushes);
            return Ok(());
        }

        // Lines 18-32: the page already has delta state.
        if state.update_count + 1 > self.config.consolidate_threshold {
            // Lines 21-27: consolidate base + deltas + new op into a fresh
            // base page; old records become garbage.
            state.pending.push(op);
            state.base = state.merged_entries();
            state.pending.clear();
            state.update_count = 0;
            state.invalidate_csr();
            let image = encode_base_page(&state.base);
            let addr = self.append_retrying(StreamId::BASE, &image, tag)?;
            let old_base = state.base_addr.replace(addr);
            let old_deltas = std::mem::take(&mut state.delta_addrs);
            if let Some(a) = old_base {
                self.store.invalidate(a)?;
            }
            for a in old_deltas {
                self.store.invalidate(a)?;
            }
            BwTreeStats::bump(&self.stats.base_flushes);
            BwTreeStats::bump(&self.stats.consolidations);
            self.store.trace().emit(
                self.store.clock().now().0,
                TraceKind::DeltaMerge,
                leaf as u64,
                self.id as u64,
            );
            let image = encode_base_page(&state.base);
            self.listener.on_event(
                self.id as u64,
                &TreeEvent::Consolidate {
                    page: leaf as u64,
                    image,
                },
            );
            return self.maybe_split(inner, leaf);
        }

        match self.config.mode {
            WriteMode::Traditional => {
                // Classic chain growth: flush a one-op delta, keep the old
                // records valid.
                let image = encode_delta(std::slice::from_ref(&op));
                let addr = self.append_retrying(StreamId::DELTA, &image, tag)?;
                state.pending.push(op);
                state.update_count += 1;
                state.delta_addrs.push(addr);
                BwTreeStats::bump(&self.stats.delta_flushes);
            }
            WriteMode::ReadOptimized => {
                // Line 20: merge the old delta with the new update into one
                // delta pointing straight at the base page; the replaced
                // delta record is invalidated (out-of-place update).
                state.merge_pending(op);
                state.update_count += 1;
                let image = encode_delta(&state.pending);
                let addr = self.append_retrying(StreamId::DELTA, &image, tag)?;
                let old = std::mem::replace(&mut state.delta_addrs, vec![addr]);
                debug_assert!(old.len() <= 1, "read-optimized invariant");
                for a in old {
                    self.store.invalidate(a)?;
                }
                BwTreeStats::bump(&self.stats.delta_flushes);
                BwTreeStats::bump(&self.stats.delta_merges);
            }
        }
        Ok(())
    }

    /// Splits `leaf` if its consolidated size exceeds the limit. Splits only
    /// trigger when the page has no pending deltas (post-consolidation), so
    /// the two halves are clean base pages.
    fn maybe_split(&self, inner: &mut TreeInner, leaf: PageId) -> StorageResult<()> {
        if !self.config.split_enabled {
            return Ok(());
        }
        loop {
            let state = inner.pages.get(&leaf).expect("leaf exists");
            if !state.pending.is_empty() || state.base.len() <= self.config.max_page_entries {
                return Ok(());
            }
            let mid = state.base.len() / 2;
            let separator = state.base[mid].0.clone();
            let right_id = inner.next_page;
            inner.next_page += 1;

            let state = inner.pages.get_mut(&leaf).expect("leaf exists");
            let right_entries = state.base.split_off(mid);
            state.invalidate_csr();
            let left_image = encode_base_page(&state.base);
            let right_image = encode_base_page(&right_entries);

            match self.flush_mode {
                FlushMode::Synchronous => {
                    let left_addr =
                        self.append_retrying(StreamId::BASE, &left_image, self.tag(leaf))?;
                    let old = state.base_addr.replace(left_addr);
                    if let Some(a) = old {
                        self.store.invalidate(a)?;
                    }
                    let right_addr =
                        self.append_retrying(StreamId::BASE, &right_image, self.tag(right_id))?;
                    inner.pages.insert(
                        right_id,
                        PageState {
                            base_addr: Some(right_addr),
                            base: right_entries,
                            ..PageState::default()
                        },
                    );
                    BwTreeStats::add(&self.stats.base_flushes, 2);
                }
                FlushMode::Deferred => {
                    inner.pages.insert(
                        right_id,
                        PageState {
                            base: right_entries,
                            ..PageState::default()
                        },
                    );
                    inner.dirty.insert(leaf);
                    inner.dirty.insert(right_id);
                }
            }
            inner.routing.insert(separator.clone(), right_id);
            BwTreeStats::bump(&self.stats.splits);
            self.listener.on_event(
                self.id as u64,
                &TreeEvent::Split {
                    left: leaf as u64,
                    right: right_id as u64,
                    separator,
                    left_image,
                    right_image,
                },
            );
            // The right half might still exceed the limit for pathological
            // limits; loop handles the (rare) cascade on the left half only,
            // so also check the right half explicitly.
            let right_needs = inner.pages[&right_id].base.len() > self.config.max_page_entries;
            if right_needs {
                self.maybe_split(inner, right_id)?;
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        BwTreeStats::bump(&self.stats.reads);
        if self.config.read_cache {
            let inner = self.inner.read();
            let leaf = inner.leaf_for(key);
            let state = inner.pages.get(&leaf).expect("routed page exists");
            return Ok(state.lookup(key).flatten());
        }
        self.get_cold(key)
    }

    /// Cache-off lookup: fetches the base page and every delta record from
    /// the shared store, reconstructs the page, and searches it. The number
    /// of random reads issued is the read amplification under test in
    /// Fig. 9.
    fn get_cold(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        let (base_addr, delta_addrs) = {
            let inner = self.inner.read();
            let leaf = inner.leaf_for(key);
            let state = inner.pages.get(&leaf).expect("routed page exists");
            (state.base_addr, state.delta_addrs.clone())
        };
        BwTreeStats::bump(&self.stats.cold_reads);
        // Verified reads under the tree's retry policy: a checksum mismatch
        // or transient read fault re-reads a bounded number of times; what
        // survives retries surfaces as a structured error, never a panic
        // and never garbage entries.
        let read_verified = |addr: PageAddr| {
            self.config.retry.run_when(
                self.store.clock(),
                |e| e.is_retryable(),
                || self.store.read(addr),
            )
        };
        let mut entries = match base_addr {
            Some(addr) => {
                let bytes = read_verified(addr)?;
                BwTreeStats::bump(&self.stats.cold_read_ios);
                decode_base_page(&bytes)
                    .map_err(|_| StorageError::corrupt_record(StorageOp::Read, addr))?
            }
            None => Vec::new(),
        };
        for addr in delta_addrs {
            let bytes = read_verified(addr)?;
            BwTreeStats::bump(&self.stats.cold_read_ios);
            let ops = decode_delta(&bytes)
                .map_err(|_| StorageError::corrupt_record(StorageOp::Read, addr))?;
            entries = apply_ops(&entries, &ops);
        }
        Ok(entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| entries[i].1.clone()))
    }

    /// Returns up to `limit` entries with `start <= key < end`, in key
    /// order. `None` bounds are unbounded. Served from the authoritative
    /// in-memory image (adjacency scans run on warm RW/RO caches).
    ///
    /// Pages with no buffered updates stream straight from their base slice
    /// (no copies beyond the returned entries); dirty pages pay one merge.
    pub fn scan_range(
        &self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        limit: usize,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        let start_key: &[u8] = start.unwrap_or(&[]);
        // Leaf covering `start`, then every later leaf, visited lazily.
        let first = inner
            .routing
            .range::<[u8], _>((Bound::Unbounded, Bound::Included(start_key)))
            .next_back()
            .map(|(_, &id)| id);
        let rest = inner
            .routing
            .range::<[u8], _>((Bound::Excluded(start_key), Bound::Unbounded))
            .map(|(_, &id)| id);
        'outer: for leaf in first.into_iter().chain(rest) {
            let state = inner.pages.get(&leaf).expect("routed page exists");
            // Fast path: clean page — binary-search the start position and
            // copy only the entries returned.
            let merged_storage;
            let entries: &[(Vec<u8>, Vec<u8>)] = if state.pending.is_empty() {
                &state.base
            } else {
                merged_storage = state.merged_entries();
                &merged_storage
            };
            let begin = match start {
                Some(s) => entries.partition_point(|(k, _)| k.as_slice() < s),
                None => 0,
            };
            for (k, v) in &entries[begin..] {
                if let Some(e) = end {
                    if k.as_slice() >= e {
                        break 'outer;
                    }
                }
                out.push((k.clone(), v.clone()));
                if out.len() == limit {
                    break 'outer;
                }
            }
        }
        out
    }

    /// All entries whose key starts with `prefix`, up to `limit`.
    pub fn scan_prefix(&self, prefix: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        match prefix_end_bound(prefix) {
            Some(end) => self.scan_range(Some(prefix), Some(&end), limit),
            None => self.scan_range(Some(prefix), None, limit),
        }
    }

    /// Batched prefix scan over fixed-width 8-byte item tails — the
    /// vectorized adjacency fast path.
    ///
    /// `prefixes` is a list of `(caller tag, key prefix)` pairs, **sorted
    /// by prefix bytes** so consecutive prefixes sharing a leaf page scan
    /// that segment once (an unsorted list stays correct but forfeits the
    /// batching win). For every entry whose key is exactly `prefix` plus
    /// an 8-byte tail, `visit(tag, tail, value)` is called in key order;
    /// returning `false` ends that prefix early (limit/count pushdown).
    /// At most `per_prefix_limit` entries are emitted per prefix.
    ///
    /// Clean leaves are served from their packed [`CsrSegment`] — one
    /// binary search plus a sequential run scan, no per-edge key decode;
    /// leaves with buffered deltas pay one merge (the delta overlay).
    pub fn scan_prefix_batch(
        &self,
        prefixes: &[(usize, Vec<u8>)],
        per_prefix_limit: usize,
        visit: &mut BatchVisitor<'_>,
    ) -> ScanOutcome {
        let inner = self.inner.read();
        let mut outcome = ScanOutcome::default();
        let mut last_leaf: Option<PageId> = None;
        if per_prefix_limit == 0 {
            return outcome;
        }
        'prefixes: for &(tag, ref prefix) in prefixes {
            let end = prefix_end_bound(prefix);
            let end = end.as_deref();
            let mut emitted = 0usize;
            // Leaf covering `prefix`, then every later leaf, visited until
            // the leaf's largest key passes the prefix's end bound.
            let first = inner
                .routing
                .range::<[u8], _>((Bound::Unbounded, Bound::Included(prefix.as_slice())))
                .next_back()
                .map(|(_, &id)| id);
            let rest = inner
                .routing
                .range::<[u8], _>((Bound::Excluded(prefix.as_slice()), Bound::Unbounded))
                .map(|(_, &id)| id);
            for leaf in first.into_iter().chain(rest) {
                let state = inner.pages.get(&leaf).expect("routed page exists");
                if last_leaf != Some(leaf) {
                    outcome.segments_scanned += 1;
                    last_leaf = Some(leaf);
                }
                let mut leaf_max_reached_end = false;
                if state.pending.is_empty() {
                    if let Some(seg) = state.csr_segment() {
                        outcome.csr_hits += 1;
                        if let Some(run) = seg.run(prefix) {
                            for i in run {
                                if emitted == per_prefix_limit {
                                    continue 'prefixes;
                                }
                                let tail = seg.neighbor(i).to_be_bytes();
                                let props = seg.props(i);
                                outcome.bytes_scanned += 8 + props.len() as u64;
                                emitted += 1;
                                if !visit(tag, &tail, props) {
                                    continue 'prefixes;
                                }
                            }
                        }
                        leaf_max_reached_end = match end {
                            Some(e) => seg.max_key() >= e,
                            None => false,
                        };
                        if leaf_max_reached_end {
                            continue 'prefixes;
                        }
                        continue;
                    }
                }
                // Fallback: dirty page (delta overlay) or unsupported keys —
                // scan the merged image. Only a dirty page is a true delta
                // merge crossed; a clean page without a CSR segment is a
                // plain base scan.
                if !state.pending.is_empty() {
                    bg3_obs::span::charge(bg3_obs::CostDim::DeltaMerges, 1);
                }
                let merged = state.merged_entries();
                let begin = merged.partition_point(|(k, _)| k.as_slice() < prefix.as_slice());
                for (k, v) in &merged[begin..] {
                    if let Some(e) = end {
                        if k.as_slice() >= e {
                            leaf_max_reached_end = true;
                            break;
                        }
                    }
                    outcome.bytes_scanned += (k.len() + v.len()) as u64;
                    if k.len() == prefix.len() + 8 {
                        if emitted == per_prefix_limit {
                            continue 'prefixes;
                        }
                        emitted += 1;
                        if !visit(tag, &k[prefix.len()..], v) {
                            continue 'prefixes;
                        }
                    }
                }
                if leaf_max_reached_end {
                    continue 'prefixes;
                }
            }
        }
        outcome
    }

    /// Total number of live entries. O(1): maintained by the write paths.
    pub fn entry_count(&self) -> usize {
        self.live_entries.load(std::sync::atomic::Ordering::Relaxed) as usize
    }

    /// Number of leaf pages.
    pub fn page_count(&self) -> usize {
        self.inner.read().pages.len()
    }

    /// Estimated in-memory footprint: page images plus mapping-table and
    /// routing overhead. This is the quantity Fig. 11 tracks as the forest
    /// grows: each tree pays a fixed overhead for its mapping table and
    /// root/meta structures even when nearly empty.
    pub fn memory_footprint(&self) -> usize {
        /// Fixed cost of tree bookkeeping: mapping table, routing nodes,
        /// latches, registry entry. Mirrors §3.2.1 Observation 3.
        const TREE_FIXED_OVERHEAD: usize = 512;
        let inner = self.inner.read();
        let pages: usize = inner.pages.values().map(|s| s.heap_bytes()).sum();
        let routing: usize = inner.routing.keys().map(|k| k.len() + 64).sum();
        TREE_FIXED_OVERHEAD + pages + routing + inner.pages.len() * 48
    }

    /// Flushes every dirty page as a consolidated base image (group commit,
    /// deferred mode only). Returns the flushed pages; the caller publishes
    /// the new addresses to the shared mapping table and then writes the
    /// `CheckpointComplete` WAL record (Fig. 7 steps (7)/(8)).
    ///
    /// On error, the failed page and every page not yet attempted go back
    /// into the dirty set so the next group commit retries them; pages
    /// already flushed this round stay clean (their new images are durable,
    /// and the WAL still covers them until `CheckpointComplete`).
    pub fn flush_dirty(&self) -> StorageResult<Vec<FlushedPage>> {
        let mut inner = self.inner.write();
        let dirty: Vec<PageId> = inner.dirty.drain().collect();
        let mut flushed = Vec::with_capacity(dirty.len());
        for (i, &page) in dirty.iter().enumerate() {
            if let Err(err) = self.flush_page(&mut inner, page, &mut flushed) {
                // Re-dirty the *whole* batch, not just the unflushed tail:
                // the flushed prefix has new images on storage but its
                // addresses die with this error before any publish, so the
                // pages must flush again (idempotent) or the mapping would
                // point at their old, invalidated images forever.
                for &p in &dirty {
                    inner.dirty.insert(p);
                }
                return Err(err);
            }
            // Chaos hook: die with a partially flushed batch — some new
            // images durable, nothing published, WAL intact.
            if let Err(crash) = self.crash.fire(CrashPoint::MidFlush) {
                for &p in &dirty[i + 1..] {
                    inner.dirty.insert(p);
                }
                return Err(crash);
            }
        }
        Ok(flushed)
    }

    /// Flushes one dirty page; appends go through the retry policy.
    fn flush_page(
        &self,
        inner: &mut TreeInner,
        page: PageId,
        flushed: &mut Vec<FlushedPage>,
    ) -> StorageResult<()> {
        let tag = self.tag(page);
        let state = inner.pages.get_mut(&page).expect("dirty page exists");
        state.base = state.merged_entries();
        state.pending.clear();
        state.update_count = 0;
        state.invalidate_csr();
        let image = encode_base_page(&state.base);
        let addr = self.append_retrying(StreamId::BASE, &image, tag)?;
        let state = inner.pages.get_mut(&page).expect("dirty page exists");
        let old_base = state.base_addr.replace(addr);
        let old_deltas = std::mem::take(&mut state.delta_addrs);
        // Tolerate records that are already invalid: after a crash between
        // a flush and its mapping publish, recovery re-adopts the *mapped*
        // (older) image address while the pre-crash flush already
        // invalidated it. Re-flushing such a page must stay idempotent.
        if let Some(a) = old_base {
            self.invalidate_idempotent(a)?;
        }
        for a in old_deltas {
            self.invalidate_idempotent(a)?;
        }
        BwTreeStats::bump(&self.stats.base_flushes);
        flushed.push(FlushedPage { page, addr });
        Ok(())
    }

    /// Invalidates `addr`, treating "already invalid" as success (see the
    /// crash-recovery note in [`Self::flush_page`]).
    fn invalidate_idempotent(&self, addr: PageAddr) -> StorageResult<()> {
        match self.store.invalidate(addr) {
            Err(err) if err.kind == ErrorKind::AlreadyInvalid => Ok(()),
            other => other,
        }
    }

    /// Number of pages currently dirty (deferred mode).
    pub fn dirty_count(&self) -> usize {
        self.inner.read().dirty.len()
    }

    /// Repairs the mapping after the space reclaimer moved a record of
    /// `page` from `old` to `new`. Returns `true` if an address matched.
    pub fn repair_relocated(&self, page: PageId, old: PageAddr, new: PageAddr) -> bool {
        let mut inner = self.inner.write();
        let Some(state) = inner.pages.get_mut(&page) else {
            return false;
        };
        let matches_slot = |a: &PageAddr| {
            a.extent == old.extent && a.offset == old.offset && a.stream == old.stream
        };
        if state.base_addr.as_ref().is_some_and(matches_slot) {
            state.base_addr = Some(new);
            return true;
        }
        if let Some(slot) = state.delta_addrs.iter_mut().find(|a| matches_slot(a)) {
            *slot = new;
            return true;
        }
        false
    }

    /// Re-encodes the durable record this tree owns at `old`, if any — the
    /// scrubber's repair source. The in-memory page image is authoritative,
    /// so the returned bytes equal what the (possibly rotted) stored record
    /// originally held. Returns `None` when no current address of `page`
    /// occupies `old`'s slot (the record is a superseded garbage copy).
    pub fn materialize_record(&self, page: PageId, old: PageAddr) -> Option<Vec<u8>> {
        let inner = self.inner.read();
        let state = inner.pages.get(&page)?;
        let matches_slot = |a: &PageAddr| {
            a.extent == old.extent && a.offset == old.offset && a.stream == old.stream
        };
        if state.base_addr.as_ref().is_some_and(matches_slot) {
            return Some(encode_base_page(&state.base));
        }
        let i = state.delta_addrs.iter().position(matches_slot)?;
        match self.config.mode {
            // One merged delta holding every pending op.
            WriteMode::ReadOptimized => Some(encode_delta(&state.pending)),
            // One op per delta record, `delta_addrs` parallel to `pending`.
            WriteMode::Traditional => state
                .pending
                .get(i)
                .map(|op| encode_delta(std::slice::from_ref(op))),
        }
    }

    /// The shared store this tree persists to.
    pub fn store(&self) -> &AppendOnlyStore {
        &self.store
    }
}

/// The exclusive upper bound of the key range sharing `prefix`: the
/// successor prefix, or `None` when the prefix is empty or all `0xFF`
/// (scan to the end of the tree).
fn prefix_end_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    for i in (0..end.len()).rev() {
        if end[i] != 0xFF {
            end[i] += 1;
            end.truncate(i + 1);
            return Some(end);
        }
    }
    None
}

impl std::fmt::Debug for BwTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BwTree")
            .field("id", &self.id)
            .field("pages", &self.page_count())
            .field("entries", &self.entry_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bg3_storage::{StoreBuilder, StoreConfig};

    fn store() -> AppendOnlyStore {
        StoreBuilder::from_config(StoreConfig::counting()).build()
    }

    fn tree_with(config: BwTreeConfig) -> BwTree {
        BwTree::new(1, store(), config)
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:06}").into_bytes()
    }

    #[test]
    fn put_get_round_trip() {
        let t = tree_with(BwTreeConfig::default());
        t.put(b"alpha", b"1").unwrap();
        t.put(b"beta", b"2").unwrap();
        assert_eq!(t.get(b"alpha").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(b"beta").unwrap(), Some(b"2".to_vec()));
        assert_eq!(t.get(b"gamma").unwrap(), None);
    }

    #[test]
    fn overwrite_returns_latest() {
        let t = tree_with(BwTreeConfig::default());
        t.put(b"k", b"v1").unwrap();
        t.put(b"k", b"v2").unwrap();
        assert_eq!(t.get(b"k").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn delete_tombstones_then_base_removal() {
        let t = tree_with(BwTreeConfig::default().with_consolidate_threshold(2));
        t.put(b"a", b"1").unwrap();
        t.put(b"b", b"2").unwrap();
        t.delete(b"a").unwrap();
        assert_eq!(t.get(b"a").unwrap(), None);
        // Push past consolidation so the tombstone is applied to the base.
        t.put(b"c", b"3").unwrap();
        t.put(b"d", b"4").unwrap();
        assert_eq!(t.get(b"a").unwrap(), None);
        assert_eq!(t.get(b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn read_optimized_keeps_at_most_one_delta() {
        let t = tree_with(
            BwTreeConfig::default()
                .with_mode(WriteMode::ReadOptimized)
                .with_consolidate_threshold(100),
        );
        for i in 0..20 {
            t.put(&key(i), b"v").unwrap();
        }
        let inner = t.inner.read();
        for state in inner.pages.values() {
            assert!(state.delta_addrs.len() <= 1, "single-delta invariant");
        }
    }

    #[test]
    fn traditional_grows_chains_until_consolidation() {
        let t = tree_with(
            BwTreeConfig::default()
                .with_mode(WriteMode::Traditional)
                .with_consolidate_threshold(5)
                .with_max_page_entries(1000),
        );
        // First write creates the base; next 5 writes are deltas; the 7th
        // (update_count 5 + 1 > 5) consolidates.
        for i in 0..6 {
            t.put(&key(i), b"v").unwrap();
        }
        {
            let inner = t.inner.read();
            let state = &inner.pages[&FIRST_LEAF];
            assert_eq!(state.delta_addrs.len(), 5);
        }
        t.put(&key(6), b"v").unwrap();
        {
            let inner = t.inner.read();
            let state = &inner.pages[&FIRST_LEAF];
            assert_eq!(state.delta_addrs.len(), 0, "chain consolidated");
            assert_eq!(state.base.len(), 7);
        }
        assert_eq!(t.stats().snapshot().consolidations, 1);
    }

    #[test]
    fn cold_reads_count_ios_traditional_vs_read_optimized() {
        // Mirrors Fig. 9: same writes, very different read amplification.
        let writes = 8; // base + 7 buffered updates, below threshold 10
        let trad = tree_with(BwTreeConfig::sled_baseline());
        let opt = tree_with(BwTreeConfig::read_optimized_baseline());
        for t in [&trad, &opt] {
            for i in 0..writes {
                t.put(&key(0), format!("v{i}").as_bytes()).unwrap();
            }
        }
        assert_eq!(trad.get(&key(0)).unwrap(), Some(b"v7".to_vec()));
        assert_eq!(opt.get(&key(0)).unwrap(), Some(b"v7".to_vec()));
        let ts = trad.stats().snapshot();
        let os = opt.stats().snapshot();
        // Traditional: 1 base + 7 deltas = 8 reads. Read-optimized: 2.
        assert_eq!(ts.cold_read_ios, 8);
        assert_eq!(os.cold_read_ios, 2);
        assert!(ts.read_amplification() > os.read_amplification());
    }

    #[test]
    fn read_optimized_writes_more_bytes_sequentially() {
        // Mirrors Fig. 10: merged deltas re-write earlier ops.
        let store_t = store();
        let store_o = store();
        let trad = BwTree::new(1, store_t.clone(), BwTreeConfig::sled_baseline());
        let opt = BwTree::new(1, store_o.clone(), BwTreeConfig::read_optimized_baseline());
        for t in [&trad, &opt] {
            for i in 0..9 {
                t.put(&key(i), b"valuevalue").unwrap();
            }
        }
        let bytes_t = store_t.stats().snapshot().bytes_appended;
        let bytes_o = store_o.stats().snapshot().bytes_appended;
        assert!(
            bytes_o > bytes_t,
            "merged deltas cost more write bytes ({bytes_o} <= {bytes_t})"
        );
    }

    #[test]
    fn splits_preserve_contents_and_route_correctly() {
        let t = tree_with(
            BwTreeConfig::default()
                .with_max_page_entries(8)
                .with_consolidate_threshold(4),
        );
        for i in 0..100 {
            t.put(&key(i), format!("v{i}").as_bytes()).unwrap();
        }
        assert!(t.page_count() > 1, "tree split");
        assert!(t.stats().snapshot().splits > 0);
        for i in 0..100 {
            assert_eq!(
                t.get(&key(i)).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "key {i} lost after splits"
            );
        }
        assert_eq!(t.entry_count(), 100);
    }

    #[test]
    fn splits_disabled_keeps_single_page() {
        let t = tree_with(
            BwTreeConfig::default()
                .with_max_page_entries(4)
                .with_consolidate_threshold(2),
        );
        let t = {
            let mut cfg = t.config().clone();
            cfg.split_enabled = false;
            tree_with(cfg)
        };
        for i in 0..50 {
            t.put(&key(i), b"v").unwrap();
        }
        assert_eq!(t.page_count(), 1);
        assert_eq!(t.stats().snapshot().splits, 0);
    }

    #[test]
    fn scan_range_and_prefix() {
        let t = tree_with(BwTreeConfig::default().with_max_page_entries(8));
        for i in 0..40 {
            t.put(&key(i), format!("v{i}").as_bytes()).unwrap();
        }
        let all = t.scan_range(None, None, usize::MAX);
        assert_eq!(all.len(), 40);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted output");

        let window = t.scan_range(Some(&key(10)), Some(&key(20)), usize::MAX);
        assert_eq!(window.len(), 10);
        assert_eq!(window[0].0, key(10));

        let limited = t.scan_range(None, None, 5);
        assert_eq!(limited.len(), 5);

        let prefixed = t.scan_prefix(b"key00000", usize::MAX);
        assert_eq!(prefixed.len(), 10, "key000000..key000009");
        let prefixed_all = t.scan_prefix(b"key0000", usize::MAX);
        assert_eq!(prefixed_all.len(), 40, "all keys share key0000");
    }

    #[test]
    fn scan_prefix_all_ff_prefix() {
        let t = tree_with(BwTreeConfig::default());
        t.put(&[0xFF, 0xFF, 0x01], b"a").unwrap();
        t.put(&[0xFF, 0xFE], b"b").unwrap();
        let hits = t.scan_prefix(&[0xFF, 0xFF], usize::MAX);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, b"a".to_vec());
    }

    /// Composite-ish edge key: 2-byte group tag + 8-byte big-endian dst.
    fn edge_key(group: u16, dst: u64) -> Vec<u8> {
        let mut k = group.to_be_bytes().to_vec();
        k.extend_from_slice(&dst.to_be_bytes());
        k
    }

    fn collect_batch(t: &BwTree, prefixes: &[(usize, Vec<u8>)], limit: usize) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        t.scan_prefix_batch(prefixes, limit, &mut |tag, tail, _| {
            out.push((tag, u64::from_be_bytes(tail.try_into().unwrap())));
            true
        });
        out
    }

    #[test]
    fn batch_scan_matches_per_prefix_scans() {
        let t = tree_with(
            BwTreeConfig::default()
                .with_max_page_entries(8)
                .with_consolidate_threshold(3),
        );
        for g in 0..6u16 {
            for d in 0..7u64 {
                t.put(&edge_key(g, d * 11), &[g as u8, d as u8]).unwrap();
            }
        }
        let prefixes: Vec<(usize, Vec<u8>)> = (0..6u16)
            .map(|g| (g as usize, g.to_be_bytes().to_vec()))
            .collect();
        let got = collect_batch(&t, &prefixes, usize::MAX);
        let mut want = Vec::new();
        for (tag, p) in &prefixes {
            for (k, _) in t.scan_prefix(p, usize::MAX) {
                want.push((*tag, u64::from_be_bytes(k[2..].try_into().unwrap())));
            }
        }
        assert_eq!(got, want, "batched ≡ per-prefix, in key order");
    }

    #[test]
    fn batch_scan_sees_pending_deltas_and_survives_consolidation() {
        // Threshold high enough that deltas stay pending (dirty overlay).
        let t = tree_with(BwTreeConfig::default().with_consolidate_threshold(100));
        t.put(&edge_key(1, 5), b"old").unwrap();
        t.put(&edge_key(1, 9), b"x").unwrap();
        t.put(&edge_key(1, 5), b"new").unwrap();
        t.delete(&edge_key(1, 9)).unwrap();
        let mut seen = Vec::new();
        let outcome = t.scan_prefix_batch(
            &[(0, 1u16.to_be_bytes().to_vec())],
            usize::MAX,
            &mut |_, tail, v| {
                seen.push((u64::from_be_bytes(tail.try_into().unwrap()), v.to_vec()));
                true
            },
        );
        assert_eq!(seen, vec![(5, b"new".to_vec())], "overlay applied");
        assert_eq!(outcome.csr_hits, 0, "dirty page: merged-image fallback");

        // Consolidate (threshold 1: the third write merges the chain into a
        // fresh base), then the CSR path serves the same answer.
        let t2 = tree_with(BwTreeConfig::default().with_consolidate_threshold(1));
        for (d, v) in [(5u64, b"new".as_slice()), (7, b"x"), (9, b"y")] {
            t2.put(&edge_key(1, d), v).unwrap();
        }
        let got = collect_batch(&t2, &[(0, 1u16.to_be_bytes().to_vec())], usize::MAX);
        assert_eq!(got, vec![(0, 5), (0, 7), (0, 9)]);
        let outcome =
            t2.scan_prefix_batch(&[(0, 1u16.to_be_bytes().to_vec())], 10, &mut |_, _, _| true);
        assert!(outcome.csr_hits > 0, "clean page: CSR fast path");
    }

    #[test]
    fn batch_scan_counts_shared_segments_once() {
        // One page (no splits): N prefixes over the same leaf must count
        // one segment, while N separate calls count N.
        let t = tree_with(BwTreeConfig::default().with_max_page_entries(10_000));
        for g in 0..20u16 {
            t.put(&edge_key(g, 1), b"v").unwrap();
        }
        assert_eq!(t.page_count(), 1);
        let prefixes: Vec<(usize, Vec<u8>)> = (0..20u16)
            .map(|g| (g as usize, g.to_be_bytes().to_vec()))
            .collect();
        let batched = t.scan_prefix_batch(&prefixes, usize::MAX, &mut |_, _, _| true);
        assert_eq!(batched.segments_scanned, 1);
        let mut scalar = ScanOutcome::default();
        for p in &prefixes {
            scalar.absorb(t.scan_prefix_batch(
                std::slice::from_ref(p),
                usize::MAX,
                &mut |_, _, _| true,
            ));
        }
        assert_eq!(scalar.segments_scanned, 20);
    }

    #[test]
    fn batch_scan_limit_and_early_stop() {
        let t = tree_with(BwTreeConfig::default().with_consolidate_threshold(0));
        for d in 0..10u64 {
            t.put(&edge_key(3, d), b"v").unwrap();
        }
        let got = collect_batch(&t, &[(7, 3u16.to_be_bytes().to_vec())], 4);
        assert_eq!(got, vec![(7, 0), (7, 1), (7, 2), (7, 3)]);
        // Visitor returning false stops the prefix.
        let mut n = 0;
        t.scan_prefix_batch(
            &[(0, 3u16.to_be_bytes().to_vec())],
            usize::MAX,
            &mut |_, _, _| {
                n += 1;
                n < 2
            },
        );
        assert_eq!(n, 2);
    }

    #[test]
    fn batch_scan_spans_page_splits() {
        let t = tree_with(
            BwTreeConfig::default()
                .with_max_page_entries(4)
                .with_consolidate_threshold(2),
        );
        for d in 0..40u64 {
            t.put(&edge_key(9, d), b"v").unwrap();
        }
        assert!(t.page_count() > 1, "group spans several leaves");
        let got = collect_batch(&t, &[(0, 9u16.to_be_bytes().to_vec())], usize::MAX);
        assert_eq!(got.len(), 40);
        assert!(got.windows(2).all(|w| w[0].1 < w[1].1), "key order");
    }

    #[test]
    fn empty_prefix_batch_scans_bare_item_tree() {
        // Dedicated trees store bare 8-byte items; the empty prefix scans
        // them all through the CSR path.
        let t = tree_with(BwTreeConfig::default().with_consolidate_threshold(0));
        for d in [3u64, 1, 7] {
            t.put(&d.to_be_bytes(), b"v").unwrap();
        }
        let got = collect_batch(&t, &[(0, Vec::new())], usize::MAX);
        assert_eq!(got, vec![(0, 1), (0, 3), (0, 7)]);
    }

    #[test]
    fn deferred_mode_writes_nothing_until_flush() {
        let s = store();
        let mut t = BwTree::new(1, s.clone(), BwTreeConfig::default());
        t.set_flush_mode(FlushMode::Deferred);
        for i in 0..10 {
            t.put(&key(i), b"v").unwrap();
        }
        assert_eq!(s.stats().snapshot().appends, 0, "no flushes yet");
        assert_eq!(t.dirty_count(), 1);
        assert_eq!(t.get(&key(3)).unwrap(), Some(b"v".to_vec()));
        let flushed = t.flush_dirty().unwrap();
        assert_eq!(flushed.len(), 1);
        assert!(s.stats().snapshot().appends >= 1);
        assert_eq!(t.dirty_count(), 0);
        // Re-flushing with nothing dirty is a no-op.
        assert!(t.flush_dirty().unwrap().is_empty());
    }

    #[test]
    fn deferred_flush_invalidates_replaced_pages() {
        let s = store();
        let mut t = BwTree::new(1, s.clone(), BwTreeConfig::default());
        t.set_flush_mode(FlushMode::Deferred);
        t.put(b"a", b"1").unwrap();
        t.flush_dirty().unwrap();
        t.put(b"a", b"2").unwrap();
        t.flush_dirty().unwrap();
        let snap = s.stats().snapshot();
        assert_eq!(snap.invalidations, 1, "first image became garbage");
    }

    #[test]
    fn events_fire_in_order() {
        let rec = crate::events::RecordingListener::new();
        let t = BwTree::with_listener(
            9,
            store(),
            BwTreeConfig::default()
                .with_consolidate_threshold(2)
                .with_max_page_entries(1000),
            rec.clone(),
        );
        t.put(b"a", b"1").unwrap();
        t.delete(b"a").unwrap();
        t.put(b"b", b"2").unwrap();
        t.put(b"c", b"3").unwrap(); // triggers consolidation (3 > 2)
        let events = rec.drain();
        assert!(matches!(events[0].1, TreeEvent::Upsert { .. }));
        assert!(matches!(events[1].1, TreeEvent::Delete { .. }));
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, TreeEvent::Consolidate { .. })));
        assert!(events.iter().all(|(id, _)| *id == 9));
    }

    #[test]
    fn split_event_carries_both_images() {
        let rec = crate::events::RecordingListener::new();
        let t = BwTree::with_listener(
            1,
            store(),
            BwTreeConfig::default()
                .with_max_page_entries(4)
                .with_consolidate_threshold(2),
            rec.clone(),
        );
        for i in 0..10 {
            t.put(&key(i), b"v").unwrap();
        }
        let events = rec.drain();
        let split = events
            .iter()
            .find_map(|(_, e)| match e {
                TreeEvent::Split {
                    left_image,
                    right_image,
                    separator,
                    ..
                } => Some((left_image.clone(), right_image.clone(), separator.clone())),
                _ => None,
            })
            .expect("a split happened");
        let left = decode_base_page(&split.0).unwrap();
        let right = decode_base_page(&split.1).unwrap();
        assert!(!left.is_empty() && !right.is_empty());
        assert!(left.last().unwrap().0 < split.2);
        assert_eq!(right.first().unwrap().0, split.2);
    }

    #[test]
    fn repair_relocated_fixes_addresses() {
        let s = store();
        let t = BwTree::new(1, s.clone(), BwTreeConfig::default());
        t.put(b"a", b"1").unwrap();
        let (page, old_addr) = {
            let inner = t.inner.read();
            let st = &inner.pages[&FIRST_LEAF];
            (FIRST_LEAF, st.base_addr.unwrap())
        };
        // Simulate a GC move: write the same bytes elsewhere.
        let bytes = s.read(old_addr).unwrap();
        let new_addr = s.append(StreamId::BASE, &bytes, 0, None).unwrap();
        assert!(t.repair_relocated(page, old_addr, new_addr));
        assert!(
            !t.repair_relocated(page, old_addr, new_addr),
            "already moved"
        );
        let inner = t.inner.read();
        assert_eq!(inner.pages[&FIRST_LEAF].base_addr, Some(new_addr));
    }

    #[test]
    fn memory_footprint_grows_with_data() {
        let t = tree_with(BwTreeConfig::default());
        let empty = t.memory_footprint();
        for i in 0..100 {
            t.put(&key(i), &[0u8; 64]).unwrap();
        }
        assert!(t.memory_footprint() > empty + 100 * 64);
    }

    #[test]
    fn ttl_config_propagates_to_extents() {
        let s = store();
        let cfg = BwTreeConfig::default().with_ttl_nanos(Some(1_000_000));
        let t = BwTree::new(1, s.clone(), cfg);
        t.put(b"a", b"1").unwrap();
        let infos = s.extent_infos(StreamId::BASE).unwrap();
        assert!(infos[0].ttl_deadline.is_some());
    }

    #[test]
    fn transient_append_failures_are_retried_transparently() {
        use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // The first three appends fail; the retry policy (4 attempts)
        // absorbs them without surfacing an error.
        let plan = FaultPlan::seeded(1)
            .with_rule(FaultRule::new(FaultOp::Append, FaultKind::AppendFail, 1.0).at_most(3));
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let clock = s.clock().clone();
        let t = BwTree::new(1, s.clone(), BwTreeConfig::default());
        t.put(b"a", b"1").unwrap();
        assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(s.fault_injector().total_fired(), 3, "all three faults hit");
        // Backoff doubled per retry: 100 + 200 + 400 µs of simulated wait.
        assert_eq!(clock.now().as_micros(), 700);
    }

    #[test]
    fn failed_group_commit_keeps_pages_dirty() {
        use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // Ten straight failures: two whole commits (4 attempts each) fail,
        // the third succeeds on its final attempt.
        let plan = FaultPlan::seeded(1)
            .with_rule(FaultRule::new(FaultOp::Append, FaultKind::AppendFail, 1.0).at_most(10));
        let s = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let mut t = BwTree::new(1, s.clone(), BwTreeConfig::default());
        t.set_flush_mode(FlushMode::Deferred);
        t.put(b"a", b"1").unwrap();
        assert_eq!(t.dirty_count(), 1);
        assert!(t.flush_dirty().is_err(), "budget 10: attempts 1-4 fail");
        assert_eq!(t.dirty_count(), 1, "page stays dirty for the next commit");
        assert!(t.flush_dirty().is_err(), "attempts 5-8 fail");
        assert_eq!(t.dirty_count(), 1);
        let flushed = t.flush_dirty().unwrap();
        assert_eq!(flushed.len(), 1, "attempts 9-10 fail, 11 succeeds");
        assert_eq!(t.dirty_count(), 0);
        assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()), "nothing lost");
    }

    #[test]
    fn mid_flush_crash_fires_once_and_keeps_the_rest_dirty() {
        let s = store();
        let mut t = BwTree::new(
            1,
            s.clone(),
            BwTreeConfig::default()
                .with_max_page_entries(4)
                .with_consolidate_threshold(2),
        );
        t.set_flush_mode(FlushMode::Deferred);
        let switch = CrashSwitch::new();
        t.set_crash_switch(switch.clone());
        for i in 0..30 {
            t.put(&key(i), b"v").unwrap();
        }
        let before = t.dirty_count();
        assert!(before > 1, "several pages dirty");
        switch.arm(CrashPoint::MidFlush);
        let err = t.flush_dirty().unwrap_err();
        assert!(err.is_crash());
        assert_eq!(t.dirty_count(), before - 1, "one page flushed pre-crash");
        // Firing disarmed the switch: the next commit completes.
        let flushed = t.flush_dirty().unwrap();
        assert_eq!(flushed.len(), before - 1);
        assert_eq!(t.dirty_count(), 0);
    }

    #[test]
    fn concurrent_writers_and_readers_are_safe() {
        let t = Arc::new(tree_with(
            BwTreeConfig::default()
                .with_max_page_entries(32)
                .with_consolidate_threshold(5),
        ));
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    t.put(&key(w * 1000 + i), b"v").unwrap();
                }
            }));
        }
        for _ in 0..2 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let _ = t.get(&key(i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.entry_count(), 800);
    }
}
