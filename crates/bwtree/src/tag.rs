//! Relocation tags.
//!
//! Every record a Bw-tree appends to the shared store carries a 64-bit
//! owner tag so that, when the space reclaimer moves the record, the engine
//! can route the address fix-up back to the right tree and page. The tag
//! packs `tree_id` (high 32 bits) and `page_id` (low 32 bits).

/// Decoded relocation tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageTag {
    /// Owning tree within the forest.
    pub tree: u32,
    /// Page within the tree.
    pub page: u32,
}

impl PageTag {
    /// Packs the tag into the u64 the storage layer carries.
    pub fn encode(self) -> u64 {
        ((self.tree as u64) << 32) | self.page as u64
    }

    /// Unpacks a storage tag.
    pub fn decode(raw: u64) -> PageTag {
        PageTag {
            tree: (raw >> 32) as u32,
            page: raw as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for (tree, page) in [(0, 0), (1, 2), (u32::MAX, u32::MAX), (7, u32::MAX)] {
            let tag = PageTag { tree, page };
            assert_eq!(PageTag::decode(tag.encode()), tag);
        }
    }

    #[test]
    fn fields_do_not_bleed() {
        let tag = PageTag {
            tree: 0xAABBCCDD,
            page: 0x11223344,
        };
        assert_eq!(tag.encode(), 0xAABBCCDD_11223344);
    }
}
