//! Bw-tree configuration.

use crate::tree::FlushMode;
use bg3_storage::RetryPolicy;

/// Which write path the tree uses (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Classic Bw-tree: one delta appended per update, chain grows until
    /// consolidation. This is the SLED baseline of §4.3.1.
    Traditional,
    /// BG3's read-optimized path: at most one (merged) delta per page.
    #[default]
    ReadOptimized,
}

/// Tuning knobs for one Bw-tree.
#[derive(Debug, Clone)]
pub struct BwTreeConfig {
    /// Write path selection.
    pub mode: WriteMode,
    /// Consolidate a page once its delta count would exceed this many
    /// buffered updates. The paper's micro-benchmarks use 10.
    pub consolidate_threshold: usize,
    /// Split a leaf once its consolidated entry count exceeds this.
    pub max_page_entries: usize,
    /// Allow structural splits. §4.3.1 disables splits to isolate the
    /// delta-merging variable.
    pub split_enabled: bool,
    /// Serve reads from the in-memory page images. When `false`, every read
    /// fetches base+delta records from storage (the "cache size zero"
    /// setting of Fig. 9).
    pub read_cache: bool,
    /// Optional TTL attached to every flushed record, in simulated
    /// nanoseconds. Workloads with expiring data (Financial Risk Control,
    /// Table 1) set this so extents inherit batch-expiry deadlines (§3.3).
    pub ttl_nanos: Option<u64>,
    /// Retry policy applied to every storage append the tree issues.
    /// Transient (injected) failures are retried with simulated-clock
    /// backoff; organic errors and crashes surface immediately.
    pub retry: RetryPolicy,
    /// Initial flush mode. Durable nodes set [`FlushMode::Deferred`] so the
    /// WAL carries durability and dirty pages group-commit in batches.
    pub flush_mode: FlushMode,
}

impl Default for BwTreeConfig {
    fn default() -> Self {
        BwTreeConfig {
            mode: WriteMode::ReadOptimized,
            consolidate_threshold: 10,
            max_page_entries: 128,
            split_enabled: true,
            read_cache: true,
            ttl_nanos: None,
            retry: RetryPolicy::default(),
            flush_mode: FlushMode::Synchronous,
        }
    }
}

impl BwTreeConfig {
    /// The SLED-style baseline configuration used in §4.3.1: traditional
    /// write path, consolidate every 10 deltas, no splits, no read cache.
    pub fn sled_baseline() -> Self {
        BwTreeConfig {
            mode: WriteMode::Traditional,
            consolidate_threshold: 10,
            split_enabled: false,
            read_cache: false,
            ..BwTreeConfig::default()
        }
    }

    /// BG3's configuration for the same micro-benchmark: read-optimized
    /// write path, everything else identical.
    pub fn read_optimized_baseline() -> Self {
        BwTreeConfig {
            mode: WriteMode::ReadOptimized,
            ..Self::sled_baseline()
        }
    }

    /// Builder-style setter for [`WriteMode`].
    pub fn with_mode(mut self, mode: WriteMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style setter for the read cache.
    pub fn with_read_cache(mut self, enabled: bool) -> Self {
        self.read_cache = enabled;
        self
    }

    /// Builder-style setter for the TTL.
    pub fn with_ttl_nanos(mut self, ttl: Option<u64>) -> Self {
        self.ttl_nanos = ttl;
        self
    }

    /// Builder-style setter for the split limit.
    pub fn with_max_page_entries(mut self, n: usize) -> Self {
        self.max_page_entries = n;
        self
    }

    /// Builder-style setter for the consolidation threshold.
    pub fn with_consolidate_threshold(mut self, n: usize) -> Self {
        self.consolidate_threshold = n;
        self
    }

    /// Builder-style setter for the append retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style setter for the initial flush mode.
    pub fn with_flush_mode(mut self, mode: FlushMode) -> Self {
        self.flush_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_read_optimized() {
        let c = BwTreeConfig::default();
        assert_eq!(c.mode, WriteMode::ReadOptimized);
        assert_eq!(c.consolidate_threshold, 10);
        assert!(c.split_enabled);
        assert!(c.read_cache);
    }

    #[test]
    fn sled_baseline_matches_section_4_3_1() {
        let c = BwTreeConfig::sled_baseline();
        assert_eq!(c.mode, WriteMode::Traditional);
        assert_eq!(c.consolidate_threshold, 10);
        assert!(!c.split_enabled);
        assert!(!c.read_cache);
        let b = BwTreeConfig::read_optimized_baseline();
        assert_eq!(b.mode, WriteMode::ReadOptimized);
        assert_eq!(b.consolidate_threshold, c.consolidate_threshold);
        assert_eq!(b.split_enabled, c.split_enabled);
        assert_eq!(b.read_cache, c.read_cache);
    }

    #[test]
    fn builders_compose() {
        let c = BwTreeConfig::default()
            .with_mode(WriteMode::Traditional)
            .with_read_cache(false)
            .with_ttl_nanos(Some(5))
            .with_max_page_entries(64)
            .with_consolidate_threshold(3);
        assert_eq!(c.mode, WriteMode::Traditional);
        assert!(!c.read_cache);
        assert_eq!(c.ttl_nanos, Some(5));
        assert_eq!(c.max_page_entries, 64);
        assert_eq!(c.consolidate_threshold, 3);
    }

    #[test]
    fn retry_policy_defaults_and_overrides() {
        let c = BwTreeConfig::default();
        assert_eq!(c.retry, RetryPolicy::default());
        let c = c.with_retry(RetryPolicy::no_retries());
        assert_eq!(c.retry, RetryPolicy::no_retries());
    }
}
