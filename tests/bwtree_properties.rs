//! Property-based tests of the Bw-tree against a model, across write
//! modes, flush modes, and cache settings.

use bg3_bwtree::tree::FlushMode;
use bg3_bwtree::{BwTree, BwTreeConfig, WriteMode};
use bg3_storage::{StoreBuilder, StoreConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Cmd {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Flush,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Short keys from a small alphabet: lots of overwrites and ordering
    // edge cases (prefixes, equal keys, empty key).
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..4)
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        5 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..6))
            .prop_map(|(k, v)| Cmd::Put(k, v)),
        2 => key_strategy().prop_map(Cmd::Delete),
        1 => Just(Cmd::Flush),
    ]
}

fn run_cmds(tree: &BwTree, model: &mut BTreeMap<Vec<u8>, Vec<u8>>, cmds: &[Cmd]) {
    for cmd in cmds {
        match cmd {
            Cmd::Put(k, v) => {
                tree.put(k, v).unwrap();
                model.insert(k.clone(), v.clone());
            }
            Cmd::Delete(k) => {
                tree.delete(k).unwrap();
                model.remove(k);
            }
            Cmd::Flush => {
                tree.flush_dirty().unwrap();
            }
        }
    }
}

fn assert_matches_model(tree: &BwTree, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    // Point lookups over every key ever mentioned plus strangers.
    for k in model.keys() {
        assert_eq!(tree.get(k).unwrap().as_ref(), model.get(k), "get {k:?}");
    }
    assert_eq!(tree.get(b"zzz-never-written").unwrap(), None);
    // Full ordered scan equals the model.
    let scanned = tree.scan_range(None, None, usize::MAX);
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(scanned, expected, "scan mismatch");
    assert_eq!(tree.entry_count(), model.len());
}

fn config_for(mode: WriteMode, read_cache: bool) -> BwTreeConfig {
    BwTreeConfig::default()
        .with_mode(mode)
        .with_read_cache(read_cache)
        .with_max_page_entries(6)
        .with_consolidate_threshold(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn read_optimized_tree_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..80)) {
        let tree = BwTree::new(
            1,
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            config_for(WriteMode::ReadOptimized, true),
        );
        let mut model = BTreeMap::new();
        run_cmds(&tree, &mut model, &cmds);
        assert_matches_model(&tree, &model);
    }

    #[test]
    fn traditional_tree_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..80)) {
        let tree = BwTree::new(
            1,
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            config_for(WriteMode::Traditional, true),
        );
        let mut model = BTreeMap::new();
        run_cmds(&tree, &mut model, &cmds);
        assert_matches_model(&tree, &model);
    }

    #[test]
    fn cold_reads_agree_with_model(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
        // Cache off: every get reconstructs the page from storage images.
        // Splits stay enabled; the durable representation must be complete.
        for mode in [WriteMode::Traditional, WriteMode::ReadOptimized] {
            let tree = BwTree::new(
                1,
                StoreBuilder::from_config(StoreConfig::counting()).build(),
                config_for(mode, false),
            );
            let mut model = BTreeMap::new();
            // Cold mode cannot serve keys never flushed in deferred mode, so
            // skip Flush commands (they are a deferred-mode concept).
            let cmds: Vec<Cmd> = cmds
                .iter()
                .filter(|c| !matches!(c, Cmd::Flush))
                .cloned()
                .collect();
            run_cmds(&tree, &mut model, &cmds);
            for k in model.keys() {
                let got = tree.get(k).unwrap();
                prop_assert_eq!(
                    got.as_ref(),
                    model.get(k),
                    "cold get {:?} under {:?}", k, mode
                );
            }
        }
    }

    #[test]
    fn deferred_mode_matches_model_across_flushes(
        cmds in proptest::collection::vec(cmd_strategy(), 1..80)
    ) {
        let mut tree = BwTree::new(
            1,
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            config_for(WriteMode::ReadOptimized, true),
        );
        tree.set_flush_mode(FlushMode::Deferred);
        let mut model = BTreeMap::new();
        run_cmds(&tree, &mut model, &cmds);
        assert_matches_model(&tree, &model);
    }

    #[test]
    fn scan_range_is_a_model_range(
        cmds in proptest::collection::vec(cmd_strategy(), 1..60),
        start in key_strategy(),
        end in key_strategy(),
    ) {
        let tree = BwTree::new(
            1,
            StoreBuilder::from_config(StoreConfig::counting()).build(),
            config_for(WriteMode::ReadOptimized, true),
        );
        let mut model = BTreeMap::new();
        run_cmds(&tree, &mut model, &cmds);
        // Inverted bounds must yield nothing (and must not panic).
        let (lo, hi) = if start <= end { (&start, &end) } else { (&end, &start) };
        if start > end {
            prop_assert!(tree.scan_range(Some(&start), Some(&end), usize::MAX).is_empty());
        }
        let scanned = tree.scan_range(Some(lo), Some(hi), usize::MAX);
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model
            .range::<Vec<u8>, _>(lo.clone()..hi.clone())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(scanned, expected);
    }
}
