//! The execution layer over real engines: the same query must return the
//! same result on every backend, and the optimizer must never change
//! results.

use bg3_core::{Bg3Config, Bg3Db, ByteGraphConfig, ByteGraphDb};
use bg3_graph::{Edge, EdgeType, GraphStore, MemGraph, VertexId};
use bg3_query::{optimize, parse, Executor, QueryResult};
use proptest::prelude::*;

fn load(store: &dyn GraphStore, edges: &[(u64, u64)]) {
    for &(s, d) in edges {
        store
            .insert_edge(&Edge::new(VertexId(s), EdgeType::FOLLOW, VertexId(d)))
            .unwrap();
        // Reverse index for in() steps.
        store
            .insert_edge(&Edge::new(
                VertexId(d),
                EdgeType::FOLLOW.reversed(),
                VertexId(s),
            ))
            .unwrap();
    }
}

const QUERIES: &[&str] = &[
    "g.V(1).out(follow).order()",
    "g.V(1).out(follow).out(follow).dedup().order()",
    "g.V(1).out(follow).count()",
    "g.V(2).in(follow).order()",
    "g.V(1).out(follow).order().limit(2)",
    "g.V(1).out(follow).out(follow).limit(4).path()",
    "g.V(9).out(follow).count()",
];

#[test]
fn engines_agree_on_every_query() {
    let edges = [
        (1u64, 2u64),
        (1, 3),
        (1, 4),
        (2, 5),
        (3, 5),
        (3, 6),
        (4, 1),
        (5, 6),
    ];
    let mem = MemGraph::new();
    let bg3 = Bg3Db::new(Bg3Config::default());
    let byte = ByteGraphDb::new(ByteGraphConfig::default());
    load(&mem, &edges);
    load(&bg3, &edges);
    load(&byte, &edges);
    let exec = Executor::default();
    for text in QUERIES {
        let expected = exec.run_text(&mem, text).unwrap();
        assert_eq!(
            exec.run_text(&bg3, text).unwrap(),
            expected,
            "BG3 diverged on {text}"
        );
        assert_eq!(
            exec.run_text(&byte, text).unwrap(),
            expected,
            "ByteGraph diverged on {text}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimizer_never_changes_results(
        edges in proptest::collection::vec((0u64..12, 0u64..12), 1..60),
        anchor in 0u64..12,
        steps in proptest::collection::vec(0usize..5, 0..4),
    ) {
        let g = MemGraph::new();
        load(&g, &edges);
        // Build a random (valid) pipeline textually.
        let mut text = format!("g.V({anchor})");
        for s in steps {
            text.push_str(match s {
                0 => ".out(follow)",
                1 => ".in(follow)",
                2 => ".dedup()",
                3 => ".limit(3)",
                _ => ".order()",
            });
        }
        let query = parse(&text).unwrap();
        let exec = Executor::default();
        // Unoptimized: run the naive translation (optimize of a query with
        // no adjacent limit/dedup pairs is identity, so compare against a
        // manually de-optimized plan: insert Dedup fusion blockers is hard;
        // instead compare optimized run to a step-by-step reference).
        let optimized = exec.run_plan(&g, &optimize(&query)).unwrap();
        let reference = exec.run(&g, &query).unwrap();
        prop_assert_eq!(optimized, reference);
    }
}

#[test]
fn limit_pushdown_saves_storage_reads_on_bg3() {
    // A super-vertex on BG3; limit(5) right after out() must not enumerate
    // the whole adjacency list.
    let bg3 = Bg3Db::new(Bg3Config::default());
    for d in 0..2_000u64 {
        bg3.insert_edge(&Edge::new(VertexId(1), EdgeType::FOLLOW, VertexId(d)))
            .unwrap();
    }
    let exec = Executor::default();
    let result = exec.run_text(&bg3, "g.V(1).out(follow).limit(5)").unwrap();
    assert_eq!(
        result,
        QueryResult::Vertices((0..5).map(VertexId).collect())
    );
}
