//! Chaos harness: injected append faults plus a crash at every named crash
//! point, driven through a mixed Follow workload.
//!
//! Each scenario runs a durable [`Bg3Db`] and an in-memory shadow model
//! side by side, arms one [`CrashPoint`] after a warm-up, keeps applying
//! operations until the engine dies mid-operation, then restarts it with
//! [`Bg3Db::recover`] from the two surviving pieces of state (the shared
//! store and the shared mapping table) and asserts the recovered graph
//! matches the shadow exactly.
//!
//! The op that observed the crash is the only one whose effect is allowed
//! to be in-flight: it must be atomically present or absent, and the
//! shadow is reconciled to whichever the engine chose.

use bg3_core::prelude::*;
use bg3_graph::MemGraph;

/// Workload universe: a handful of hot users (who split out into dedicated
/// trees) plus a long tail.
const USERS: u64 = 48;
const HOT_USERS: u64 = 5;

/// splitmix64 — the test's deterministic op source.
fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A mutation whose effect must be re-checked after a crash interrupted it.
#[derive(Debug, Clone)]
enum ShadowOp {
    InsertEdge(Edge),
    DeleteEdge(VertexId, EdgeType, VertexId),
    InsertVertex(Vertex),
}

/// Mixed Follow workload: mostly follow insertions (so flush / split /
/// group-commit paths stay busy), some unfollows, vertex upserts, and
/// one-hop reads.
fn op_at(i: u64) -> Option<ShadowOp> {
    let r = mix(i);
    let src = if r.is_multiple_of(3) {
        VertexId(mix(r) % USERS)
    } else {
        VertexId(mix(r) % HOT_USERS)
    };
    let dst = VertexId(1_000 + mix(r ^ 0xABCD) % 200);
    match r % 10 {
        0..=5 => Some(ShadowOp::InsertEdge(Edge {
            src,
            etype: EdgeType::FOLLOW,
            dst,
            props: i.to_le_bytes().to_vec(),
        })),
        6 => Some(ShadowOp::DeleteEdge(src, EdgeType::FOLLOW, dst)),
        7 => Some(ShadowOp::InsertVertex(Vertex {
            id: src,
            props: i.to_le_bytes().to_vec(),
        })),
        // Reads don't mutate; the driver issues them directly.
        _ => None,
    }
}

fn apply(store: &dyn GraphStore, op: &ShadowOp) -> StorageResult<()> {
    match op {
        ShadowOp::InsertEdge(edge) => store.insert_edge(edge),
        ShadowOp::DeleteEdge(src, etype, dst) => store.delete_edge(*src, *etype, *dst),
        ShadowOp::InsertVertex(vertex) => store.insert_vertex(vertex),
    }
}

/// Durable engine config under fault injection: small pages and a low
/// split-out threshold keep every crash point's code path hot, and a 4%
/// append failure rate exercises the retry policy throughout.
fn chaos_config() -> Bg3Config {
    let mut config = Bg3Config::default();
    config.store = StoreConfig::counting()
        .with_extent_capacity(4096)
        .with_faults(FaultPlan::seeded(0xC4A0_5EED).with_rule(FaultRule::new(
            FaultOp::Append,
            FaultKind::AppendFail,
            0.04,
        )));
    config.forest = config.forest.clone().with_split_out_threshold(12);
    config.forest.tree_config = config
        .forest
        .tree_config
        .clone()
        .with_max_page_entries(8)
        .with_consolidate_threshold(4);
    config.gc_policy = GcPolicyKind::Fifo;
    config.durability = Some(bg3_core::DurabilityConfig {
        group_commit_pages: 6,
    });
    config
}

/// Every source vertex the engine and shadow must agree on.
fn assert_graphs_match(db: &Bg3Db, shadow: &MemGraph) {
    for u in 0..USERS {
        let id = VertexId(u);
        assert_eq!(
            db.neighbors(id, EdgeType::FOLLOW, usize::MAX).unwrap(),
            shadow.neighbors(id, EdgeType::FOLLOW, usize::MAX).unwrap(),
            "adjacency divergence at vertex {u}"
        );
        assert_eq!(
            db.get_vertex(id).unwrap(),
            shadow.get_vertex(id).unwrap(),
            "vertex divergence at {u}"
        );
    }
}

/// The crashed op is allowed to have landed or not — but nothing in
/// between. Reconcile the shadow to the engine's choice.
fn reconcile(db: &Bg3Db, shadow: &MemGraph, op: &ShadowOp) {
    match op {
        ShadowOp::InsertEdge(edge) => {
            if db
                .get_edge(edge.src, edge.etype, edge.dst)
                .unwrap()
                .as_deref()
                == Some(edge.props.as_slice())
            {
                shadow.insert_edge(edge).unwrap();
            }
        }
        ShadowOp::DeleteEdge(src, etype, dst) => {
            if db.get_edge(*src, *etype, *dst).unwrap().is_none() {
                shadow.delete_edge(*src, *etype, *dst).unwrap();
            }
        }
        ShadowOp::InsertVertex(vertex) => {
            if db.get_vertex(vertex.id).unwrap().as_deref() == Some(vertex.props.as_slice()) {
                shadow.insert_vertex(vertex).unwrap();
            }
        }
    }
}

/// Runs the full scenario for one crash point and returns how many ops ran
/// before the crash (so the test can assert the scenario was non-trivial).
fn crash_and_recover_at(point: CrashPoint) -> u64 {
    let config = chaos_config();
    let db = Bg3Db::new(config.clone());
    let shadow = MemGraph::new();

    const WARM_UP: u64 = 150;
    const MAX_OPS: u64 = 6_000;
    let mut crashed: Option<ShadowOp> = None;
    let mut died = false;
    let mut ops_done = 0u64;
    for i in 0..MAX_OPS {
        if i == WARM_UP {
            db.crash_switch().arm(point);
        }
        match op_at(i) {
            Some(op) => match apply(&db, &op) {
                Ok(()) => apply(&shadow, &op).unwrap(),
                Err(e) => {
                    assert!(e.is_crash(), "only the armed crash may kill an op: {e:?}");
                    crashed = Some(op);
                    died = true;
                }
            },
            None => {
                // Reads never hit a crash point; spot-check live equality.
                let probe = VertexId(mix(i) % HOT_USERS);
                assert_eq!(
                    db.neighbors(probe, EdgeType::FOLLOW, 16).unwrap(),
                    shadow.neighbors(probe, EdgeType::FOLLOW, 16).unwrap()
                );
            }
        }
        ops_done = i + 1;
        if died {
            break;
        }
        // Background maintenance beat: gives MidGcCycle a trigger and makes
        // the other crash points coexist with live reclamation.
        if point == CrashPoint::MidGcCycle && i % 64 == 63 {
            if let Err(e) = db.run_gc_cycle(2) {
                assert!(e.is_crash(), "gc may only die at the crash point: {e:?}");
                died = true;
                break;
            }
        }
    }
    assert!(died, "{point:?} never fired within {MAX_OPS} ops");
    assert!(ops_done > WARM_UP, "crash must postdate the warm-up");
    assert!(
        db.store().fault_injector().total_fired() > 0,
        "append faults should have fired along the way"
    );

    // The node dies. Only the shared store and the mapping table survive.
    let store = db.store().clone();
    let mapping = db.mapping().unwrap().clone();
    drop(db);

    let recovered = Bg3Db::recover(store, mapping, config).unwrap();
    if let Some(op) = &crashed {
        reconcile(&recovered, &shadow, op);
    }
    assert_graphs_match(&recovered, &shadow);

    // The recovered engine is a live engine: keep the workload going (fresh
    // op range) and stay convergent, including another group commit.
    for i in MAX_OPS..MAX_OPS + 300 {
        if let Some(op) = op_at(i) {
            apply(&recovered, &op).unwrap();
            apply(&shadow, &op).unwrap();
        }
    }
    recovered.checkpoint().unwrap();
    assert_graphs_match(&recovered, &shadow);
    ops_done
}

/// 8 OS threads hammer one durable engine (append faults still firing)
/// through put / delete / read / split-out traffic on the lock-striped
/// forest. Each thread owns a disjoint source-vertex range, so a
/// per-thread [`MemGraph`] shadow is race-free; at the end every thread's
/// shadow must match the shared engine exactly, split-outs must actually
/// have happened concurrently, and a checkpoint afterwards must not
/// disturb convergence.
#[test]
fn striped_forest_survives_concurrent_put_get_split_out() {
    const THREADS: u64 = 8;
    const OPS_PER_THREAD: u64 = 700;
    /// Sources per thread; the first two are hot enough to split out.
    const SRCS_PER_THREAD: u64 = 12;

    let db = Bg3Db::new(chaos_config());
    let shadows: Vec<MemGraph> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let db = &db;
                scope.spawn(move || {
                    let shadow = MemGraph::new();
                    let base = 10_000 + t * 100;
                    for i in 0..OPS_PER_THREAD {
                        let r = mix((t << 32) | i);
                        // Skew toward the two hot sources so split-out
                        // (threshold 12) fires early and often per thread.
                        let src = if r.is_multiple_of(3) {
                            VertexId(base + mix(r) % SRCS_PER_THREAD)
                        } else {
                            VertexId(base + mix(r) % 2)
                        };
                        let dst = VertexId(1_000 + mix(r ^ 0xABCD) % 150);
                        let op = match r % 10 {
                            0..=6 => ShadowOp::InsertEdge(Edge {
                                src,
                                etype: EdgeType::FOLLOW,
                                dst,
                                props: i.to_le_bytes().to_vec(),
                            }),
                            7 => ShadowOp::DeleteEdge(src, EdgeType::FOLLOW, dst),
                            8 => ShadowOp::InsertVertex(Vertex {
                                id: src,
                                props: i.to_le_bytes().to_vec(),
                            }),
                            _ => {
                                // Read beat: this thread's sources only, so
                                // the local shadow is authoritative.
                                assert_eq!(
                                    db.neighbors(src, EdgeType::FOLLOW, 16).unwrap(),
                                    shadow.neighbors(src, EdgeType::FOLLOW, 16).unwrap(),
                                    "live divergence at {src:?}"
                                );
                                continue;
                            }
                        };
                        apply(db, &op).unwrap();
                        apply(&shadow, &op).unwrap();
                    }
                    shadow
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(
        db.store().fault_injector().total_fired() > 0,
        "append faults should have fired under the concurrent load"
    );
    assert!(
        db.forest().tree_count() > 1,
        "hot sources split out into dedicated trees while racing"
    );
    let verify = |label: &str| {
        for (t, shadow) in shadows.iter().enumerate() {
            for s in 0..SRCS_PER_THREAD {
                let id = VertexId(10_000 + t as u64 * 100 + s);
                assert_eq!(
                    db.neighbors(id, EdgeType::FOLLOW, usize::MAX).unwrap(),
                    shadow.neighbors(id, EdgeType::FOLLOW, usize::MAX).unwrap(),
                    "{label}: adjacency divergence at thread {t} src {s}"
                );
                assert_eq!(
                    db.get_vertex(id).unwrap(),
                    shadow.get_vertex(id).unwrap(),
                    "{label}: vertex divergence at thread {t} src {s}"
                );
            }
        }
    };
    verify("after join");
    db.checkpoint().unwrap();
    verify("after checkpoint");
}

#[test]
fn crash_mid_flush_recovers_to_shadow_model() {
    crash_and_recover_at(CrashPoint::MidFlush);
}

#[test]
fn crash_mid_split_recovers_to_shadow_model() {
    crash_and_recover_at(CrashPoint::MidSplit);
}

#[test]
fn crash_mid_gc_cycle_recovers_to_shadow_model() {
    crash_and_recover_at(CrashPoint::MidGcCycle);
}

#[test]
fn crash_mid_group_commit_recovers_to_shadow_model() {
    crash_and_recover_at(CrashPoint::MidGroupCommit);
}
