//! Differential testing: all three engines must agree with the in-memory
//! oracle on arbitrary operation sequences.

use bg3_core::{Bg3Config, Bg3Db, ByteGraphConfig, ByteGraphDb, NeptuneLike};
use bg3_graph::{Edge, EdgeType, GraphStore, MemGraph, VertexId};
use bg3_storage::StoreConfig;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Insert { src: u64, dst: u64, props: Vec<u8> },
    Delete { src: u64, dst: u64 },
    Get { src: u64, dst: u64 },
    Neighbors { src: u64 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    // A small id space maximizes collisions (overwrites, deletes of
    // existing edges, non-empty scans).
    let id = 0u64..24;
    prop_oneof![
        4 => (id.clone(), 0u64..24, proptest::collection::vec(any::<u8>(), 0..8))
            .prop_map(|(src, dst, props)| Action::Insert { src, dst, props }),
        1 => (id.clone(), 0u64..24).prop_map(|(src, dst)| Action::Delete { src, dst }),
        2 => (id.clone(), 0u64..24).prop_map(|(src, dst)| Action::Get { src, dst }),
        2 => id.prop_map(|src| Action::Neighbors { src }),
    ]
}

fn apply_and_compare(oracle: &MemGraph, engine: &dyn GraphStore, actions: &[Action]) {
    const ETYPE: EdgeType = EdgeType::FOLLOW;
    for action in actions {
        match action {
            Action::Insert { src, dst, props } => {
                let edge =
                    Edge::new(VertexId(*src), ETYPE, VertexId(*dst)).with_props(props.clone());
                oracle.insert_edge(&edge).unwrap();
                engine.insert_edge(&edge).unwrap();
            }
            Action::Delete { src, dst } => {
                oracle
                    .delete_edge(VertexId(*src), ETYPE, VertexId(*dst))
                    .unwrap();
                engine
                    .delete_edge(VertexId(*src), ETYPE, VertexId(*dst))
                    .unwrap();
            }
            Action::Get { src, dst } => {
                assert_eq!(
                    oracle
                        .get_edge(VertexId(*src), ETYPE, VertexId(*dst))
                        .unwrap(),
                    engine
                        .get_edge(VertexId(*src), ETYPE, VertexId(*dst))
                        .unwrap(),
                    "get({src},{dst}) diverged"
                );
            }
            Action::Neighbors { src } => {
                assert_eq!(
                    oracle.neighbors(VertexId(*src), ETYPE, usize::MAX).unwrap(),
                    engine.neighbors(VertexId(*src), ETYPE, usize::MAX).unwrap(),
                    "neighbors({src}) diverged"
                );
            }
        }
    }
    // Final sweep: every adjacency list must agree.
    for src in 0..24u64 {
        assert_eq!(
            oracle.neighbors(VertexId(src), ETYPE, usize::MAX).unwrap(),
            engine.neighbors(VertexId(src), ETYPE, usize::MAX).unwrap(),
            "final adjacency of {src} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bg3_matches_oracle(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        // A tiny split-out threshold exercises the INIT→dedicated migration
        // mid-sequence.
        let mut config = Bg3Config::default();
        config.forest = config.forest.with_split_out_threshold(6);
        config.forest.tree_config = config.forest.tree_config
            .with_max_page_entries(8)
            .with_consolidate_threshold(3);
        let engine = Bg3Db::new(config);
        apply_and_compare(&MemGraph::new(), &engine, &actions);
    }

    #[test]
    fn bytegraph_matches_oracle(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let engine = ByteGraphDb::new(ByteGraphConfig {
            lsm: bg3_lsm::LsmConfig::tiny(),
            cache_capacity_groups: 4, // force evictions + reloads
            ..ByteGraphConfig::default()
        });
        apply_and_compare(&MemGraph::new(), &engine, &actions);
    }

    #[test]
    fn neptune_matches_oracle(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let engine = NeptuneLike::new(StoreConfig::counting().with_extent_capacity(1 << 20));
        apply_and_compare(&MemGraph::new(), &engine, &actions);
    }
}
