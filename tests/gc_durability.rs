//! Space reclamation must never lose data: whatever the policy, however
//! hard the GC is driven, every live edge stays readable and every tree's
//! relocated pages resolve.

use bg3_core::{Bg3Config, Bg3Db, GcPolicyKind};
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_storage::{StoreConfig, StreamId};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn db_with(policy: GcPolicyKind, extent: usize) -> Bg3Db {
    let mut config = Bg3Config::default();
    config.store = StoreConfig::counting().with_extent_capacity(extent);
    config.gc_policy = policy;
    config.forest = config.forest.with_split_out_threshold(8);
    config.forest.tree_config = config
        .forest
        .tree_config
        .clone()
        .with_max_page_entries(16)
        .with_consolidate_threshold(4);
    Bg3Db::new(config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gc_preserves_every_live_edge(
        writes in proptest::collection::vec((0u64..32, 0u64..16, any::<u8>()), 20..200),
        policy_idx in 0usize..3,
    ) {
        let policy = [GcPolicyKind::Fifo, GcPolicyKind::DirtyRatio, GcPolicyKind::WorkloadAware][policy_idx];
        let db = db_with(policy, 1024);
        let mut model: BTreeMap<(u64, u64), u8> = BTreeMap::new();
        for (i, &(src, dst, v)) in writes.iter().enumerate() {
            db.store().clock().advance_micros(10);
            db.insert_edge(
                &Edge::new(VertexId(src), EdgeType::LIKE, VertexId(dst))
                    .with_props(vec![v]),
            ).unwrap();
            model.insert((src, dst), v);
            if i % 16 == 15 {
                db.run_gc_cycle(3).unwrap();
            }
        }
        // Hammer the reclaimer to a high utilization target.
        db.reclaim_to_utilization(0.9, 4).unwrap();
        for (&(src, dst), &v) in &model {
            prop_assert_eq!(
                db.get_edge(VertexId(src), EdgeType::LIKE, VertexId(dst)).unwrap(),
                Some(vec![v]),
                "edge ({},{}) lost after GC under {:?}", src, dst, policy
            );
        }
    }
}

#[test]
fn repeated_reclamation_improves_utilization_without_data_loss() {
    let db = db_with(GcPolicyKind::WorkloadAware, 2048);
    // Generate heavy churn: overwrite the same edges many times.
    for round in 0..40u64 {
        for src in 0..16u64 {
            for dst in 0..4u64 {
                db.store().clock().advance_micros(5);
                db.insert_edge(
                    &Edge::new(VertexId(src), EdgeType::LIKE, VertexId(dst))
                        .with_props(round.to_le_bytes().to_vec()),
                )
                .unwrap();
            }
        }
    }
    let before = db
        .store()
        .stream_stats(StreamId::DELTA)
        .unwrap()
        .utilization();
    let report = db.reclaim_to_utilization(0.85, 8).unwrap();
    assert!(report.relocated_extents + report.expired_extents > 0);
    let after = db
        .store()
        .stream_stats(StreamId::DELTA)
        .unwrap()
        .utilization();
    assert!(after >= before, "utilization improved: {before} -> {after}");
    for src in 0..16u64 {
        for dst in 0..4u64 {
            assert_eq!(
                db.get_edge(VertexId(src), EdgeType::LIKE, VertexId(dst))
                    .unwrap(),
                Some(39u64.to_le_bytes().to_vec())
            );
        }
    }
}

#[test]
fn ttl_expiry_frees_space_for_free() {
    let mut config = Bg3Config::default().with_ttl_nanos(Some(1_000_000)); // 1ms
    config.store = StoreConfig::counting().with_extent_capacity(4096);
    config.gc_policy = GcPolicyKind::WorkloadAware;
    // Keep consolidated pages well under the extent capacity.
    config.forest.tree_config = config.forest.tree_config.with_max_page_entries(16);
    let db = Bg3Db::new(config);
    for i in 0..200u64 {
        db.insert_edge(
            &Edge::new(VertexId(i % 8), EdgeType::TRANSFER, VertexId(1000 + i))
                .with_props(i.to_le_bytes().to_vec()),
        )
        .unwrap();
    }
    // Let everything expire, then reclaim.
    db.store().clock().advance_millis(10);
    let report = db.run_gc_cycle(64).unwrap();
    assert!(report.expired_extents > 0, "extents expired: {report:?}");
    assert_eq!(report.moved_bytes, 0, "TTL reclamation moves nothing");
    let snap = db.store().stats().snapshot();
    assert_eq!(snap.relocation_bytes, 0);
}
