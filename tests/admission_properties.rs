//! Admission-control invariants, model-checked.
//!
//! Two properties the overload design leans on:
//!
//! 1. **Conservation** — every op offered to the controller lands in
//!    exactly one bin: admitted, shed `Overloaded`, or shed
//!    `DeadlineExceeded`. No op is double-counted, none vanishes.
//! 2. **Bounded queues** — the per-class virtual queue (the token
//!    bucket's debt divided by the expected op cost) never exceeds the
//!    configured `queue_depth`, under any budget and any interleaving of
//!    admissions, sheds, and clock advances — and the same holds for the
//!    full [`GovernedEngine`] while seeded storage faults are firing,
//!    where execution errors must count as *executed*, never as shed.

use bg3_core::admit::{AdmissionConfig, AdmissionController, ClassBudget, OpClass};
use bg3_core::{GovernedConfig, GovernedEngine, ReplicatedConfig};
use bg3_graph::{EdgeType, VertexId};
use bg3_storage::obs::MetricRegistry;
use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule, SimClock, StoreConfig};
use bg3_workloads::Op;
use proptest::prelude::*;

fn budget_strategy() -> impl Strategy<Value = ClassBudget> {
    (
        1_000u64..1_000_000_000,
        0u64..5_000_000,
        (0u64..64, 1u64..100_000),
        0u64..50_000_000,
    )
        .prop_map(
            |(cost_per_sec, burst, (queue_depth, expected_cost), deadline_nanos)| ClassBudget {
                cost_per_sec,
                burst,
                queue_depth,
                expected_cost,
                deadline_nanos,
            },
        )
}

fn class_strategy() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        Just(OpClass::PointRead),
        Just(OpClass::Traversal),
        Just(OpClass::Write),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_offered_op_is_admitted_or_shed_and_queues_stay_bounded(
        point_read in budget_strategy(),
        traversal in budget_strategy(),
        write in budget_strategy(),
        ops in proptest::collection::vec(
            (class_strategy(), 1u64..500_000, 0u64..2_000_000),
            1..200,
        ),
    ) {
        let config = AdmissionConfig { point_read, traversal, write };
        let clock = SimClock::new();
        let registry = MetricRegistry::new();
        let ctl = AdmissionController::new(clock.clone(), config, &registry);

        let mut admitted = 0u64;
        let mut shed = 0u64;
        for &(class, cost, advance) in &ops {
            clock.advance_nanos(advance);
            match ctl.admit(class, cost) {
                Ok(a) => {
                    admitted += 1;
                    prop_assert!(a.pressure >= 0.0 && a.pressure <= 1.0);
                }
                Err(e) => {
                    prop_assert!(e.is_overloaded(), "only typed sheds: {e}");
                    prop_assert!(e.is_retryable(), "sheds must be retryable");
                    shed += 1;
                }
            }
            // The bounded-queue invariant, after every single op.
            let depth = config.budget(class).queue_depth;
            prop_assert!(
                ctl.queue_len(class) <= depth,
                "queue {} exceeds configured depth {depth}",
                ctl.queue_len(class),
            );
        }

        let snap = ctl.snapshot();
        prop_assert_eq!(snap.submitted, ops.len() as u64);
        prop_assert_eq!(snap.admitted, admitted);
        prop_assert_eq!(snap.shed(), shed);
        // Conservation: exactly one bin per op.
        prop_assert_eq!(snap.submitted, snap.admitted + snap.shed());
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let v = || (0u64..32).prop_map(VertexId);
    prop_oneof![
        3 => (v(), v()).prop_map(|(src, dst)| Op::InsertEdge {
            src,
            etype: EdgeType::FOLLOW,
            dst,
            props: vec![],
        }),
        1 => (v(), v()).prop_map(|(src, dst)| Op::DeleteEdge {
            src,
            etype: EdgeType::FOLLOW,
            dst,
        }),
        3 => (v(), v()).prop_map(|(src, dst)| Op::CheckEdge {
            src,
            etype: EdgeType::FOLLOW,
            dst,
        }),
        2 => (v(), 1usize..20).prop_map(|(src, limit)| Op::OneHop {
            src,
            etype: EdgeType::FOLLOW,
            limit,
        }),
        1 => (v(), 1usize..4).prop_map(|(src, hops)| Op::KHop {
            src,
            etype: EdgeType::FOLLOW,
            hops,
            fanout: 8,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn governed_engine_conserves_ops_under_seeded_faults(
        fault_seed in any::<u64>(),
        read_fail_per_mille in 0u64..150,
        append_fail_per_mille in 0u64..100,
        ops in proptest::collection::vec((op_strategy(), 0u64..200_000), 1..120),
    ) {
        let store = StoreConfig::counting().with_faults(
            FaultPlan::seeded(fault_seed)
                .with_rule(FaultRule::new(
                    FaultOp::Read,
                    FaultKind::ReadFail,
                    read_fail_per_mille as f64 / 1_000.0,
                ))
                .with_rule(FaultRule::new(
                    FaultOp::Append,
                    FaultKind::AppendFail,
                    append_fail_per_mille as f64 / 1_000.0,
                )),
        );
        // A tight budget so the sequence actually exercises the shed path.
        let tight = ClassBudget {
            cost_per_sec: 2_000_000,
            burst: 20_000,
            queue_depth: 6,
            expected_cost: 5_000,
            deadline_nanos: 20_000_000,
        };
        let engine = GovernedEngine::new(
            ReplicatedConfig {
                store,
                ro_nodes: 2,
                ..ReplicatedConfig::default()
            },
            GovernedConfig {
                admission: AdmissionConfig {
                    point_read: tight,
                    traversal: tight,
                    write: tight,
                },
                ..GovernedConfig::default()
            },
        );

        let clock = engine.rep().store().clock().clone();
        let mut executed = 0u64;
        let mut shed = 0u64;
        for (op, advance) in &ops {
            clock.advance_nanos(*advance);
            match engine.submit(op) {
                // Executed cleanly.
                Ok(_) => executed += 1,
                // Shed: the op never touched the engine.
                Err(e) if e.is_overloaded() => shed += 1,
                // Executed but an injected fault surfaced: still
                // *executed* for conservation purposes — the admission
                // slot was consumed.
                Err(_) => executed += 1,
            }
            let class = OpClass::of(op);
            let depth = engine.admission().config().budget(class).queue_depth;
            prop_assert!(engine.admission().queue_len(class) <= depth);
        }

        let snap = engine.admission().snapshot();
        prop_assert_eq!(snap.submitted, ops.len() as u64);
        prop_assert_eq!(snap.admitted, executed);
        prop_assert_eq!(snap.shed(), shed);
        prop_assert_eq!(snap.submitted, snap.admitted + snap.shed());
    }
}
