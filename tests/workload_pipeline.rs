//! End-to-end pipeline tests: Table-1 workload generators driving complete
//! engines, including the replicated deployment.

use bg3_core::{Bg3Config, Bg3Db, Cluster, ReplicatedBg3, ReplicatedConfig};
use bg3_graph::{k_hop_neighbors, CycleQuery, Edge, GraphStore, HopSpec, PatternMatcher};
use bg3_workloads::{DouyinFollow, DouyinRecommendation, FinancialRiskControl, Op, WorkloadGen};

fn apply(store: &dyn GraphStore, op: &Op) {
    match op {
        Op::InsertEdge {
            src,
            etype,
            dst,
            props,
        } => store
            .insert_edge(&Edge {
                src: *src,
                etype: *etype,
                dst: *dst,
                props: props.clone(),
            })
            .unwrap(),
        Op::OneHop { src, etype, limit } => {
            store.neighbors(*src, *etype, *limit).unwrap();
        }
        Op::KHop {
            src,
            etype,
            hops,
            fanout,
        } => {
            k_hop_neighbors(
                store,
                *src,
                *etype,
                HopSpec {
                    hops: *hops,
                    fanout: *fanout,
                    max_vertices: 200,
                },
            )
            .unwrap();
        }
        Op::DeleteEdge { src, etype, dst } => {
            store.delete_edge(*src, *etype, *dst).unwrap();
        }
        Op::CheckEdge { src, etype, dst } => {
            store.get_edge(*src, *etype, *dst).unwrap();
        }
        Op::PatternCycle {
            anchor,
            etype,
            length,
        } => {
            PatternMatcher {
                candidate_cap: 4,
                max_matches: 1,
                max_expansions: 500,
            }
            .has_cycle(
                store,
                CycleQuery {
                    etype: *etype,
                    length: *length,
                },
                *anchor,
            )
            .unwrap();
        }
    }
}

#[test]
fn follow_workload_runs_on_bg3_and_inserts_are_readable() {
    let db = Bg3Db::new(Bg3Config::default());
    let mut gen = DouyinFollow::new(2_000, 1.0, 5);
    let mut inserted = Vec::new();
    for _ in 0..5_000 {
        let op = gen.next_op();
        if let Op::InsertEdge {
            src, etype, dst, ..
        } = &op
        {
            inserted.push((*src, *etype, *dst));
        }
        apply(&db, &op);
    }
    assert!(!inserted.is_empty());
    for (src, etype, dst) in inserted {
        assert!(
            db.get_edge(src, etype, dst).unwrap().is_some(),
            "insert of ({src}, {dst}) durable"
        );
    }
}

#[test]
fn recommendation_workload_runs_on_a_cluster() {
    let cluster = Cluster::new(4, |_| Bg3Db::new(Bg3Config::default()));
    // Preload a small graph so multi-hop queries traverse something.
    let mut gen = DouyinFollow::new(500, 1.0, 6);
    for _ in 0..3_000 {
        apply(&cluster, &gen.next_op());
    }
    let mut rec = DouyinRecommendation::new(500, 1.0, 7);
    for _ in 0..2_000 {
        apply(&cluster, &rec.next_op());
    }
    // Sanity: the cluster spread data across shards.
    let populated = (0..4)
        .filter(|&i| cluster.shard(i).forest().total_entries() > 0)
        .count();
    assert!(populated >= 2, "data spread over {populated} shards");
}

#[test]
fn risk_control_workload_runs_on_replicated_bg3_with_full_recall() {
    let dep = ReplicatedBg3::new(ReplicatedConfig {
        ro_nodes: 2,
        ..ReplicatedConfig::default()
    });
    let mut gen = FinancialRiskControl::new(1_000, 1.0, 8);
    let mut audit = Vec::new();
    for i in 0..2_000 {
        match gen.next_op() {
            Op::InsertEdge {
                src,
                etype,
                dst,
                props,
            } => {
                dep.insert_edge(&Edge {
                    src,
                    etype,
                    dst,
                    props,
                })
                .unwrap();
                audit.push((src, etype, dst));
            }
            Op::CheckEdge { src, etype, dst } => {
                // The workload only checks edges it previously inserted; a
                // synchronized follower must see them (strong consistency).
                dep.poll_all().unwrap();
                assert!(
                    dep.ro_check_edge(0, src, etype, dst).unwrap(),
                    "op {i}: follower missed a verified edge"
                );
            }
            Op::DeleteEdge { src, etype, dst } => {
                dep.delete_edge(src, etype, dst).unwrap();
                audit.retain(|e| *e != (src, etype, dst));
            }
            Op::PatternCycle { .. } | Op::OneHop { .. } | Op::KHop { .. } => {
                // Deep analysis runs against follower 1's replica.
                dep.poll_all().unwrap();
            }
        }
        if i % 500 == 499 {
            dep.checkpoint().unwrap();
        }
    }
    dep.poll_all().unwrap();
    for ro in 0..dep.ro_count() {
        assert_eq!(dep.recall(ro, &audit).unwrap(), 1.0, "follower {ro}");
    }
}
