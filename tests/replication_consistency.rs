//! Cross-crate integration tests of the leader-follower machinery:
//! a follower must agree with the leader's tree after any interleaving of
//! writes, checkpoints, polls, and cache evictions.

use bg3_storage::{FaultKind, FaultOp, FaultPlan, FaultRule, StoreBuilder, StoreConfig};
use bg3_sync::{RoNode, RoNodeConfig, RwNode, RwNodeConfig};
use bg3_wal::Lsn;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Put { key: u8, value: u8 },
    Delete { key: u8 },
    Checkpoint,
    Poll,
    EvictRoCache,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>()).prop_map(|(key, value)| Step::Put { key, value }),
        2 => any::<u8>().prop_map(|key| Step::Delete { key }),
        1 => Just(Step::Checkpoint),
        2 => Just(Step::Poll),
        1 => Just(Step::EvictRoCache),
    ]
}

fn build_pair() -> (RwNode, RoNode) {
    let store = StoreBuilder::from_config(StoreConfig::counting()).build();
    let mut config = RwNodeConfig {
        group_commit_pages: usize::MAX, // checkpoints only when scripted
        ..RwNodeConfig::default()
    };
    // Small pages force splits and consolidations into the mix.
    config.tree_config = config
        .tree_config
        .with_max_page_entries(8)
        .with_consolidate_threshold(3);
    let rw = RwNode::new(store.clone(), config);
    let ro = RoNode::new(
        store,
        rw.mapping().clone(),
        rw.open_wal_reader(),
        RoNodeConfig {
            cache_capacity_pages: 4, // force evictions + storage re-fetches
            ..RoNodeConfig::default()
        },
    );
    (rw, ro)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn follower_converges_to_leader(steps in proptest::collection::vec(step_strategy(), 1..150)) {
        let (rw, ro) = build_pair();
        let mut model = std::collections::BTreeMap::new();
        for step in &steps {
            match step {
                Step::Put { key, value } => {
                    rw.put(&[*key], &[*value]).unwrap();
                    model.insert(*key, *value);
                }
                Step::Delete { key } => {
                    rw.delete(&[*key]).unwrap();
                    model.remove(key);
                }
                Step::Checkpoint => { rw.checkpoint().unwrap(); }
                Step::Poll => { ro.poll().unwrap(); }
                Step::EvictRoCache => ro.evict_all(),
            }
        }
        // After one final poll the follower must agree with both the
        // leader's memory and the logical model, for every possible key.
        ro.poll().unwrap();
        for key in 0u8..=255 {
            let expected = model.get(&key).map(|v| vec![*v]);
            prop_assert_eq!(
                rw.get(&[key]).unwrap(),
                expected.clone(),
                "leader diverged from model at {}", key
            );
            prop_assert_eq!(
                ro.get(1, &[key]).unwrap(),
                expected,
                "follower diverged at {}", key
            );
        }
    }

    #[test]
    fn follower_is_consistent_even_mid_stream(
        writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..80),
        poll_every in 1usize..10,
    ) {
        // Strong-consistency check the paper's Fig. 12 formalizes: any key
        // the leader wrote before the follower's latest poll is readable.
        let (rw, ro) = build_pair();
        let mut acked = std::collections::BTreeMap::new();
        for (i, (key, value)) in writes.iter().enumerate() {
            rw.put(&[*key], &[*value]).unwrap();
            acked.insert(*key, *value);
            if i % poll_every == 0 {
                ro.poll().unwrap();
                // Everything acknowledged so far must be visible now.
                for (k, v) in &acked {
                    prop_assert_eq!(
                        ro.get(1, &[*k]).unwrap(),
                        Some(vec![*v]),
                        "recall violated for {}", k
                    );
                }
            }
        }
    }
}

/// Chaos step: like [`Step`] but with explicit consistency checks mixed in.
#[derive(Debug, Clone)]
enum ChaosStep {
    Put { key: u8, value: u8 },
    Delete { key: u8 },
    Checkpoint,
    Poll,
    EvictRoCache,
    Check { key: u8 },
}

fn chaos_step_strategy() -> impl Strategy<Value = ChaosStep> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>()).prop_map(|(key, value)| ChaosStep::Put { key, value }),
        2 => any::<u8>().prop_map(|key| ChaosStep::Delete { key }),
        2 => Just(ChaosStep::Checkpoint),
        3 => Just(ChaosStep::Poll),
        1 => Just(ChaosStep::EvictRoCache),
        4 => any::<u8>().prop_map(|key| ChaosStep::Check { key }),
    ]
}

/// The logical state once every record with `lsn <= seen` has applied.
fn state_at(log: &[(Lsn, u8, Option<u8>)], seen: Lsn) -> std::collections::BTreeMap<u8, u8> {
    let mut state = std::collections::BTreeMap::new();
    for (lsn, key, value) in log {
        if *lsn > seen {
            break;
        }
        match value {
            Some(v) => {
                state.insert(*key, *v);
            }
            None => {
                state.remove(key);
            }
        }
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chaos property (failover satellite): under a budgeted schedule of
    /// read faults and dropped mapping publishes, a follower may *fail*
    /// a read (transiently) but must never *answer it wrongly* — every
    /// successful read reflects exactly the prefix of the log the follower
    /// has applied. Once the fault budgets are spent the pair converges.
    #[test]
    fn follower_never_diverges_under_read_faults_and_dropped_publishes(
        seed in any::<u64>(),
        steps in proptest::collection::vec(chaos_step_strategy(), 20..120),
    ) {
        let plan = FaultPlan::seeded(seed)
            .with_rule(FaultRule::new(FaultOp::Read, FaultKind::ReadFail, 0.3).at_most(10))
            .with_rule(
                FaultRule::new(FaultOp::MappingPublish, FaultKind::PublishDrop, 0.6).at_most(5),
            );
        let store = StoreBuilder::from_config(StoreConfig::counting().with_faults(plan)).build();
        let rw = RwNode::new(
            store.clone(),
            RwNodeConfig {
                group_commit_pages: usize::MAX,
                ..RwNodeConfig::default()
            },
        );
        let ro = RoNode::new(
            store,
            rw.mapping().clone(),
            rw.open_wal_reader(),
            RoNodeConfig {
                cache_capacity_pages: 2, // evictions force faultable re-reads
                ..RoNodeConfig::default()
            },
        );
        // Oracle: the exact WAL order of logical writes. The leader never
        // reads from shared storage on this path, so its ops are infallible
        // even under the read-fault rule.
        let mut log: Vec<(Lsn, u8, Option<u8>)> = Vec::new();
        for step in &steps {
            match step {
                ChaosStep::Put { key, value } => {
                    rw.put(&[*key], &[*value]).unwrap();
                    log.push((rw.last_lsn(), *key, Some(*value)));
                }
                ChaosStep::Delete { key } => {
                    rw.delete(&[*key]).unwrap();
                    log.push((rw.last_lsn(), *key, None));
                }
                ChaosStep::Checkpoint => {
                    // A dropped publish inside is absorbed (the horizon is
                    // withheld and the updates restaged); a read fault in
                    // the flush path surfaces transiently and the next
                    // checkpoint picks the work back up.
                    if let Err(e) = rw.checkpoint() {
                        prop_assert!(e.is_transient(), "checkpoint failed hard: {}", e);
                    }
                }
                ChaosStep::Poll => {
                    // A mid-poll read fault leaves a prefix applied; that
                    // is fine because `seen_lsn` only covers applied records.
                    if let Err(e) = ro.poll() {
                        prop_assert!(e.is_transient(), "poll failed hard: {}", e);
                    }
                }
                ChaosStep::EvictRoCache => ro.evict_all(),
                ChaosStep::Check { key } => {
                    let expected = state_at(&log, ro.seen_lsn()).get(key).map(|v| vec![*v]);
                    match ro.get(1, &[*key]) {
                        Ok(got) => prop_assert_eq!(got, expected, "diverged at {}", key),
                        Err(e) => prop_assert!(e.is_transient(), "read failed hard: {}", e),
                    }
                }
            }
        }
        // Both budgets are finite, so the storm passes. Two clean
        // checkpoints: the first republishes anything a dropped RPC left
        // staged, the second can then land the checkpoint horizon.
        for _ in 0..2 {
            for attempt in 0..16 {
                match rw.checkpoint() {
                    Ok(_) => break,
                    Err(e) => {
                        prop_assert!(e.is_transient(), "checkpoint failed hard: {}", e);
                        prop_assert!(attempt < 15, "fault budget never drained");
                    }
                }
            }
        }
        let mut clean_polls = 0;
        for _ in 0..64 {
            match ro.poll() {
                Ok(0) => {
                    clean_polls += 1;
                    if clean_polls >= 2 {
                        break;
                    }
                }
                Ok(_) => clean_polls = 0,
                Err(e) => {
                    prop_assert!(e.is_transient(), "poll failed hard: {}", e);
                    clean_polls = 0;
                }
            }
        }
        prop_assert!(clean_polls >= 2, "fault budget never drained");
        let full = state_at(&log, Lsn(u64::MAX));
        for key in 0u8..=255 {
            let expected = full.get(&key).map(|v| vec![*v]);
            // The read budget may have a few fires left; burning them on
            // retries is part of the property (reads fail, never lie).
            let mut got = ro.get(1, &[key]);
            for _ in 0..8 {
                if got.is_ok() {
                    break;
                }
                got = ro.get(1, &[key]);
            }
            prop_assert_eq!(
                got.unwrap(),
                expected,
                "follower failed to converge at {}",
                key
            );
        }
    }
}

#[test]
fn two_followers_with_different_access_patterns_agree() {
    let store = StoreBuilder::from_config(StoreConfig::counting()).build();
    let rw = RwNode::new(
        store.clone(),
        RwNodeConfig {
            group_commit_pages: 8,
            ..RwNodeConfig::default()
        },
    );
    let hot = RoNode::new(
        store.clone(),
        rw.mapping().clone(),
        rw.open_wal_reader(),
        RoNodeConfig::default(),
    );
    let cold = RoNode::new(
        store,
        rw.mapping().clone(),
        rw.open_wal_reader(),
        RoNodeConfig {
            cache_capacity_pages: 1,
            ..RoNodeConfig::default()
        },
    );
    for i in 0..300u32 {
        rw.put(format!("key{i:04}").as_bytes(), &i.to_le_bytes())
            .unwrap();
        if i % 7 == 0 {
            hot.poll().unwrap();
            // The hot follower reads constantly (lazy replay keeps firing).
            let _ = hot.get(1, format!("key{:04}", i / 2).as_bytes()).unwrap();
        }
    }
    hot.poll().unwrap();
    cold.poll().unwrap();
    for i in 0..300u32 {
        let key = format!("key{i:04}");
        let expected = Some(i.to_le_bytes().to_vec());
        assert_eq!(hot.get(1, key.as_bytes()).unwrap(), expected, "hot {i}");
        assert_eq!(cold.get(1, key.as_bytes()).unwrap(), expected, "cold {i}");
    }
}
