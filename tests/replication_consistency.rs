//! Cross-crate integration tests of the leader-follower machinery:
//! a follower must agree with the leader's tree after any interleaving of
//! writes, checkpoints, polls, and cache evictions.

use bg3_storage::{AppendOnlyStore, StoreConfig};
use bg3_sync::{RoNode, RoNodeConfig, RwNode, RwNodeConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Put { key: u8, value: u8 },
    Delete { key: u8 },
    Checkpoint,
    Poll,
    EvictRoCache,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>()).prop_map(|(key, value)| Step::Put { key, value }),
        2 => any::<u8>().prop_map(|key| Step::Delete { key }),
        1 => Just(Step::Checkpoint),
        2 => Just(Step::Poll),
        1 => Just(Step::EvictRoCache),
    ]
}

fn build_pair() -> (RwNode, RoNode) {
    let store = AppendOnlyStore::new(StoreConfig::counting());
    let mut config = RwNodeConfig {
        group_commit_pages: usize::MAX, // checkpoints only when scripted
        ..RwNodeConfig::default()
    };
    // Small pages force splits and consolidations into the mix.
    config.tree_config = config
        .tree_config
        .with_max_page_entries(8)
        .with_consolidate_threshold(3);
    let rw = RwNode::new(store.clone(), config);
    let ro = RoNode::new(
        store,
        rw.mapping().clone(),
        rw.open_wal_reader(),
        RoNodeConfig {
            cache_capacity_pages: 4, // force evictions + storage re-fetches
        },
    );
    (rw, ro)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn follower_converges_to_leader(steps in proptest::collection::vec(step_strategy(), 1..150)) {
        let (rw, ro) = build_pair();
        let mut model = std::collections::BTreeMap::new();
        for step in &steps {
            match step {
                Step::Put { key, value } => {
                    rw.put(&[*key], &[*value]).unwrap();
                    model.insert(*key, *value);
                }
                Step::Delete { key } => {
                    rw.delete(&[*key]).unwrap();
                    model.remove(key);
                }
                Step::Checkpoint => { rw.checkpoint().unwrap(); }
                Step::Poll => { ro.poll().unwrap(); }
                Step::EvictRoCache => ro.evict_all(),
            }
        }
        // After one final poll the follower must agree with both the
        // leader's memory and the logical model, for every possible key.
        ro.poll().unwrap();
        for key in 0u8..=255 {
            let expected = model.get(&key).map(|v| vec![*v]);
            prop_assert_eq!(
                rw.get(&[key]).unwrap(),
                expected.clone(),
                "leader diverged from model at {}", key
            );
            prop_assert_eq!(
                ro.get(1, &[key]).unwrap(),
                expected,
                "follower diverged at {}", key
            );
        }
    }

    #[test]
    fn follower_is_consistent_even_mid_stream(
        writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..80),
        poll_every in 1usize..10,
    ) {
        // Strong-consistency check the paper's Fig. 12 formalizes: any key
        // the leader wrote before the follower's latest poll is readable.
        let (rw, ro) = build_pair();
        let mut acked = std::collections::BTreeMap::new();
        for (i, (key, value)) in writes.iter().enumerate() {
            rw.put(&[*key], &[*value]).unwrap();
            acked.insert(*key, *value);
            if i % poll_every == 0 {
                ro.poll().unwrap();
                // Everything acknowledged so far must be visible now.
                for (k, v) in &acked {
                    prop_assert_eq!(
                        ro.get(1, &[*k]).unwrap(),
                        Some(vec![*v]),
                        "recall violated for {}", k
                    );
                }
            }
        }
    }
}

#[test]
fn two_followers_with_different_access_patterns_agree() {
    let store = AppendOnlyStore::new(StoreConfig::counting());
    let rw = RwNode::new(
        store.clone(),
        RwNodeConfig {
            group_commit_pages: 8,
            ..RwNodeConfig::default()
        },
    );
    let hot = RoNode::new(
        store.clone(),
        rw.mapping().clone(),
        rw.open_wal_reader(),
        RoNodeConfig::default(),
    );
    let cold = RoNode::new(
        store,
        rw.mapping().clone(),
        rw.open_wal_reader(),
        RoNodeConfig {
            cache_capacity_pages: 1,
        },
    );
    for i in 0..300u32 {
        rw.put(format!("key{i:04}").as_bytes(), &i.to_le_bytes())
            .unwrap();
        if i % 7 == 0 {
            hot.poll().unwrap();
            // The hot follower reads constantly (lazy replay keeps firing).
            let _ = hot.get(1, format!("key{:04}", i / 2).as_bytes()).unwrap();
        }
    }
    hot.poll().unwrap();
    cold.poll().unwrap();
    for i in 0..300u32 {
        let key = format!("key{i:04}");
        let expected = Some(i.to_le_bytes().to_vec());
        assert_eq!(hot.get(1, key.as_bytes()).unwrap(), expected, "hot {i}");
        assert_eq!(cold.get(1, key.as_bytes()).unwrap(), expected, "cold {i}");
    }
}
