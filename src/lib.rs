//! Umbrella crate: integration tests and examples live here.
pub use bg3_core as core_api;
