//! The execution layer in action: Gremlin-flavored queries compiled,
//! optimized, and executed against a BG3 engine with reverse-adjacency
//! indexes ("who follows me?" needs in-edges).
//!
//! ```sh
//! cargo run --release --example gremlin_queries
//! ```

use bg3_core::{Bg3Config, Bg3Db};
use bg3_graph::{Edge, EdgeType, GraphStore, PropertyValue, Vertex, VertexId};
use bg3_query::{optimize, parse, Executor, ExecutorConfig, QueryResult};
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Bg3Db::new(Bg3Config {
        maintain_reverse_edges: true,
        ..Bg3Config::default()
    });

    // A power-law follow graph over 5k users, with named vertices.
    let zipf = Zipf::new(5_000, 1.0);
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..40_000 {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        db.insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))?;
    }
    for v in 1..=20u64 {
        db.insert_vertex(&Vertex {
            id: VertexId(v),
            props: PropertyValue::Str(format!("user-{v}")).encode(),
        })?;
    }

    // Bound per-hop fan-out like a production gateway would: deep repeats
    // over a power-law graph explode combinatorially otherwise.
    let exec = Executor::new(ExecutorConfig {
        default_fanout: 20,
        max_traversers: 1_000_000,
        ..ExecutorConfig::default()
    });
    let queries = [
        "g.V(1).out(follow).count()",                     // my followees
        "g.V(1).in(follow).count()",                      // my followers
        "g.V(1).out(follow).out(follow).dedup().count()", // friends-of-friends
        "g.V(1).out(follow).order().limit(5)",            // first five followees
        "g.V(1).out(follow).limit(3).values()",           // with profile props
        "g.V(1).out(follow).out(follow).limit(3).path()", // sample 2-hop paths
        "g.V(1).repeat(out(follow), 3).dedup().count()",  // 3-hop reach (recommendation)
        "g.V(1).both(follow).dedup().count()",            // mutual neighborhood
    ];
    for text in queries {
        let query = parse(text)?;
        let plan = optimize(&query);
        let result = exec.run_plan(&db, &plan)?;
        println!("{text}");
        println!("  plan: {} steps", plan.steps.len());
        match result {
            QueryResult::Count(n) => println!("  => count {n}"),
            QueryResult::Vertices(vs) => println!(
                "  => vertices {:?}",
                vs.iter().map(|v| v.0).collect::<Vec<_>>()
            ),
            QueryResult::Values(vals) => {
                for (v, props) in vals {
                    let name = props
                        .as_deref()
                        .and_then(PropertyValue::decode)
                        .map(|p| format!("{p:?}"))
                        .unwrap_or_else(|| "(no profile)".into());
                    println!("  => {v}: {name}");
                }
            }
            QueryResult::Paths(paths) => {
                for p in paths {
                    println!(
                        "  => path {}",
                        p.iter()
                            .map(|v| v.0.to_string())
                            .collect::<Vec<_>>()
                            .join(" -> ")
                    );
                }
            }
        }
        println!();
    }
    Ok(())
}
