//! The "Douyin Recommendation" scenario (Table 1): read-only multi-hop
//! sampling (70% 1-hop, 20% 2-hop, 10% 3-hop) that feeds subgraphs to a
//! downstream recommendation model.
//!
//! ```sh
//! cargo run --release --example recommendation
//! ```

use bg3_core::{Bg3Config, Bg3Db};
use bg3_graph::{k_hop_neighbors, Edge, EdgeType, GraphStore, HopSpec, VertexId};
use bg3_workloads::{DouyinRecommendation, Op, WorkloadGen, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USERS: u64 = 20_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Douyin Recommendation: multi-hop subgraph sampling ==\n");

    let mut config = Bg3Config::default();
    config.forest = config.forest.with_split_out_threshold(128);
    let db = Bg3Db::new(config);

    // Build a power-law follow graph.
    let zipf = Zipf::new(USERS, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..80_000 {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        db.insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))?;
    }
    println!(
        "graph loaded: {} edges across {} trees",
        db.forest().total_entries(),
        db.forest().tree_count()
    );

    // Drive the hop-mix workload and collect subgraph sizes per hop depth.
    let mut gen = DouyinRecommendation::new(USERS, 1.0, 9);
    let mut per_hop_queries = [0u64; 4];
    let mut per_hop_vertices = [0u64; 4];
    for _ in 0..10_000 {
        match gen.next_op() {
            Op::OneHop { src, etype, limit } => {
                per_hop_queries[1] += 1;
                per_hop_vertices[1] += db.neighbors(src, etype, limit)?.len() as u64;
            }
            Op::KHop {
                src,
                etype,
                hops,
                fanout,
            } => {
                per_hop_queries[hops] += 1;
                let spec = HopSpec {
                    hops,
                    fanout,
                    max_vertices: 500,
                };
                per_hop_vertices[hops] += k_hop_neighbors(&db, src, etype, spec)?.len() as u64;
            }
            other => panic!("read-only workload produced {other:?}"),
        }
    }
    for hops in 1..=3 {
        let q = per_hop_queries[hops];
        if q > 0 {
            println!(
                "{hops}-hop: {q:>5} queries, avg subgraph {:>6.1} vertices",
                per_hop_vertices[hops] as f64 / q as f64
            );
        }
    }
    println!(
        "\nstorage counters after the read storm: {:?}",
        db.store().stats().snapshot()
    );
    println!("(reads are served from the Bw-trees' warm images: no storage reads)");
    Ok(())
}
