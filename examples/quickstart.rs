//! Quickstart: open a BG3 database, write a tiny social graph, query it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bg3_core::{Bg3Config, Bg3Db};
use bg3_graph::{Edge, EdgeType, GraphStore, PropertyValue, Vertex, VertexId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A BG3 engine over an in-process simulated shared store. Everything —
    // Bw-tree forest, append-only streams, extent tracking — is live
    // underneath; only the cloud service itself is simulated.
    let db = Bg3Db::new(Bg3Config::default());

    // Vertices: two users and a couple of videos.
    let alice = VertexId(1);
    let bob = VertexId(2);
    for (id, name) in [(alice, "alice"), (bob, "bob")] {
        db.insert_vertex(&Vertex {
            id,
            props: PropertyValue::Str(name.into()).encode(),
        })?;
    }

    // Edges: alice follows bob; both like some videos. Edge properties
    // carry the action timestamp, like Douyin's like-records.
    db.insert_edge(&Edge::new(alice, EdgeType::FOLLOW, bob))?;
    for video in 100..110u64 {
        db.insert_edge(
            &Edge::new(alice, EdgeType::LIKE, VertexId(video))
                .with_props(PropertyValue::Int(1_700_000_000 + video as i64).encode()),
        )?;
    }
    db.insert_edge(&Edge::new(bob, EdgeType::LIKE, VertexId(105)))?;

    // One-hop queries: who does alice follow, what did she like?
    let follows = db.neighbors(alice, EdgeType::FOLLOW, 10)?;
    println!(
        "alice follows {:?}",
        follows.iter().map(|(v, _)| v.0).collect::<Vec<_>>()
    );

    let likes = db.neighbors(alice, EdgeType::LIKE, 100)?;
    println!("alice liked {} videos:", likes.len());
    for (video, props) in &likes {
        let ts = PropertyValue::decode(props);
        println!("  video {} (props {:?})", video.0, ts);
    }

    // Point lookups.
    assert!(db.get_edge(alice, EdgeType::LIKE, VertexId(105))?.is_some());
    assert!(db.get_edge(bob, EdgeType::FOLLOW, alice)?.is_none());

    // Under the hood: how many Bw-trees does the forest hold, and what has
    // the storage layer seen?
    println!(
        "forest: {} tree(s), {} edges; storage: {:?}",
        db.forest().tree_count(),
        db.forest().total_entries(),
        db.store().stats().snapshot()
    );
    Ok(())
}
