//! The "Douyin Follow" scenario (Table 1 of the paper): 99% one-hop
//! follower queries, 1% follow insertions, over a power-law population.
//!
//! Runs the same operation stream against BG3 and the ByteGraph baseline
//! and prints the operation mix, forest structure, and I/O counters.
//!
//! ```sh
//! cargo run --release --example douyin_follow
//! ```

use bg3_core::{Bg3Config, Bg3Db, ByteGraphConfig, ByteGraphDb};
use bg3_graph::{Edge, EdgeType, GraphStore, VertexId};
use bg3_workloads::{DouyinFollow, Op, WorkloadGen, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USERS: u64 = 10_000;
const PRELOAD_EDGES: usize = 30_000;
const OPS: usize = 20_000;

fn preload(store: &dyn GraphStore) {
    let zipf = Zipf::new(USERS, 1.0);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..PRELOAD_EDGES {
        let src = VertexId(zipf.sample(&mut rng));
        let dst = VertexId(zipf.sample(&mut rng));
        store
            .insert_edge(&Edge::new(src, EdgeType::FOLLOW, dst))
            .unwrap();
    }
}

fn drive(store: &dyn GraphStore, label: &str) {
    let mut gen = DouyinFollow::new(USERS, 1.0, 42);
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut neighbors_seen = 0u64;
    let started = std::time::Instant::now();
    for _ in 0..OPS {
        match gen.next_op() {
            Op::InsertEdge {
                src,
                etype,
                dst,
                props,
            } => {
                store
                    .insert_edge(&Edge {
                        src,
                        etype,
                        dst,
                        props,
                    })
                    .unwrap();
                writes += 1;
            }
            Op::OneHop { src, etype, limit } => {
                neighbors_seen += store.neighbors(src, etype, limit).unwrap().len() as u64;
                reads += 1;
            }
            other => panic!("unexpected op in follow workload: {other:?}"),
        }
    }
    let elapsed = started.elapsed();
    println!(
        "{label}: {reads} one-hop reads ({neighbors_seen} neighbors), {writes} inserts in {:.2}s ({:.0} ops/s serial)",
        elapsed.as_secs_f64(),
        OPS as f64 / elapsed.as_secs_f64()
    );
}

fn main() {
    println!("== Douyin Follow: 99% read / 1% write, power-law over {USERS} users ==\n");

    let bg3 = {
        let mut config = Bg3Config::default();
        config.forest = config.forest.with_split_out_threshold(64);
        Bg3Db::new(config)
    };
    preload(&bg3);
    drive(&bg3, "BG3       ");
    let forest = bg3.forest();
    println!(
        "  forest: {} trees ({} split-outs) holding {} follow edges",
        forest.tree_count(),
        forest.stats().threshold_split_outs,
        forest.total_entries()
    );
    println!("  storage: {:?}\n", bg3.store().stats().snapshot());

    let byte = ByteGraphDb::new(ByteGraphConfig::default());
    preload(&byte);
    drive(&byte, "ByteGraph ");
    let (hits, misses) = byte.cache_stats();
    println!(
        "  memory-layer cache: {hits} hits / {misses} misses; LSM: {:?}",
        byte.lsm().stats()
    );
}
