//! The "Financial Risk Control" scenario (Table 1): a replicated BG3
//! deployment where transfer edges stream into the RW node, RO nodes
//! verify them with strong consistency, and cycle detection hunts for
//! money-laundering loops — the §2.6 motivating application.
//!
//! ```sh
//! cargo run --release --example risk_control
//! ```

use bg3_core::{Bg3Config, Bg3Db, ReplicatedBg3, ReplicatedConfig};
use bg3_graph::{CycleQuery, Edge, EdgeType, GraphStore, PatternMatcher, VertexId};
use bg3_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Financial Risk Control: replicated writes + loop detection ==\n");

    // Part 1: strong consistency between the RW node and two RO nodes.
    let dep = ReplicatedBg3::new(ReplicatedConfig {
        ro_nodes: 2,
        ..ReplicatedConfig::default()
    });
    let accounts = Zipf::new(5_000, 1.0);
    let mut rng = StdRng::seed_from_u64(11);
    let mut audit_log = Vec::new();
    for i in 0..5_000u64 {
        let src = VertexId(accounts.sample(&mut rng));
        let dst = VertexId(accounts.sample(&mut rng));
        dep.insert_edge(
            &Edge::new(src, EdgeType::TRANSFER, dst).with_props(i.to_le_bytes().to_vec()),
        )?;
        audit_log.push((src, EdgeType::TRANSFER, dst));
        if i % 1000 == 999 {
            dep.checkpoint()?; // group commit + mapping publish
        }
    }
    dep.poll_all()?;
    for ro in 0..dep.ro_count() {
        let recall = dep.recall(ro, &audit_log)?;
        println!(
            "RO node {ro}: verified {:.1}% of the leader's transfers",
            recall * 100.0
        );
        assert_eq!(recall, 1.0, "BG3's WAL sync is lossless");
    }
    println!(
        "sync latency (sim): mean {} µs over {} records\n",
        dep.ro(0).sync_latency().mean_nanos() / 1_000,
        dep.ro(0).sync_latency().count()
    );

    // Part 2: anti-money-laundering loop detection on a local engine.
    let db = Bg3Db::new(Bg3Config::default());
    // A planted 5-hop laundering ring: 1 -> 2 -> 3 -> 4 -> 5 -> 1, hidden
    // inside background transfer noise.
    for w in [(1u64, 2u64), (2, 3), (3, 4), (4, 5), (5, 1)] {
        db.insert_edge(&Edge::new(VertexId(w.0), EdgeType::TRANSFER, VertexId(w.1)))?;
    }
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..2_000 {
        let src = VertexId(100 + accounts.sample(&mut rng));
        let dst = VertexId(100 + accounts.sample(&mut rng));
        db.insert_edge(&Edge::new(src, EdgeType::TRANSFER, dst))?;
    }
    let matcher = PatternMatcher::default();
    let query = CycleQuery {
        etype: EdgeType::TRANSFER,
        length: 5,
    };
    let flagged = matcher.has_cycle(&db, query, VertexId(1))?;
    println!("account v1 on a 5-hop transfer loop? {flagged}");
    assert!(flagged);
    let clean = matcher.has_cycle(&db, query, VertexId(100 + 4_999))?;
    println!("random tail account on a 5-hop loop? {clean}");
    Ok(())
}
