//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The workspace's container has no registry access, so the real crate
//! cannot be fetched. This shim provides the exact subset the workspace
//! uses — `Mutex::lock`, `RwLock::read`/`write` without poisoning — with
//! identical semantics for correct programs (a panicked holder's poison is
//! swallowed, matching parking_lot's no-poison behavior).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after holder panicked");
    }
}
