//! Vendored stand-in for `serde_derive`, implemented directly on
//! `proc_macro` (no `syn`/`quote` — the container has no registry access).
//!
//! Supports exactly the item shapes this workspace derives on:
//! named-field structs, tuple structs, unit structs, and enums whose
//! variants are all unit-like. `#[serde(...)]` attributes are not
//! interpreted (none are used in-tree); generic items are rejected with a
//! clear panic rather than miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    EnumUnit(Vec<String>),
}

/// Derives the workspace `serde::Serialize` trait (`fn to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let mut inserts = String::new();
            for f in fields {
                inserts.push_str(&format!(
                    "map.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            format!(
                "let mut map = ::serde::value::Map::new();\n{inserts}\
                 ::serde::value::Value::Object(map)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Unit => "::serde::value::Value::Null".to_string(),
        Shape::EnumUnit(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::value::Value::String(\
                         ::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives the workspace `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _shape) = parse_item(input);
    format!("impl ::serde::Deserialize for {name} {{}}\n")
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic items are not supported (item `{name}`)");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::EnumUnit(parse_unit_variants(&name, g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
}

/// Field names of a named-field struct body, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Consume the type, tracking `<...>` depth so commas inside generic
        // arguments (e.g. HashMap<K, V>) are not mistaken for separators.
        let mut angle_depth: u32 = 0;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut in_field = false;
    let mut angle_depth: u32 = 0;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    count += 1;
                    in_field = true;
                }
            }
        }
    }
    count
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: consume until the separating comma.
                loop {
                    match iter.next() {
                        Some(TokenTree::Punct(q)) if q.as_char() == ',' => break,
                        Some(_) => {}
                        None => break,
                    }
                }
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive: enum `{enum_name}` has a data-carrying variant; \
                 only unit variants are supported"
            ),
            None => break,
            other => panic!("serde_derive: unexpected token after variant: {other:?}"),
        }
    }
    variants
}
