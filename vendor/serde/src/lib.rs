//! Vendored stand-in for `serde`.
//!
//! The real serde is a visitor-based framework; this workspace only ever
//! *serializes* (reports → JSON), so the stand-in collapses the model to a
//! single method: `Serialize::to_value` produces a [`value::Value`] tree
//! that `serde_json` renders. `Deserialize` is a derivable marker — nothing
//! in-tree deserializes at runtime.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The serialized value tree (what `serde_json` calls `Value`).

    /// A JSON-shaped value.
    #[derive(Debug, Clone, PartialEq, Default)]
    pub enum Value {
        #[default]
        Null,
        Bool(bool),
        Number(Number),
        String(String),
        Array(Vec<Value>),
        Object(Map),
    }

    /// A JSON number: unsigned, signed, or floating.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        U64(u64),
        I64(i64),
        F64(f64),
    }

    /// An insertion-ordered string→value map (deterministic output order,
    /// which the reproduce artifacts rely on).
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct Map {
        entries: Vec<(String, Value)>,
    }

    impl Map {
        /// Creates an empty map.
        pub fn new() -> Self {
            Map::default()
        }

        /// Inserts `value` under `key`, replacing any prior entry in place.
        pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
            for (k, v) in self.entries.iter_mut() {
                if *k == key {
                    return Some(std::mem::replace(v, value));
                }
            }
            self.entries.push((key, value));
            None
        }

        /// Looks up `key`.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        /// Number of entries.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// True when the map has no entries.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// Iterates entries in insertion order.
        pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
            self.entries.iter().map(|(k, v)| (k, v))
        }
    }

    impl FromIterator<(String, Value)> for Map {
        fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
            let mut map = Map::new();
            for (k, v) in iter {
                map.insert(k, v);
            }
            map
        }
    }
}

use value::{Number, Value};

/// Conversion into the serialized value tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker for types that could be deserialized. Derivable; carries no
/// behavior because nothing in this workspace deserializes at runtime.
pub trait Deserialize {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::value::{Map, Number, Value};
    use super::Serialize;

    #[test]
    fn primitives_serialize() {
        assert_eq!(7u64.to_value(), Value::Number(Number::U64(7)));
        assert_eq!((-3i32).to_value(), Value::Number(Number::I64(-3)));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), 1u64.to_value());
        m.insert("a".into(), 2u64.to_value());
        m.insert("b".into(), 3u64.to_value());
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Number(Number::U64(3))));
    }
}
