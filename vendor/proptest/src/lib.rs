//! Vendored stand-in for `proptest`.
//!
//! Provides deterministic random-input property testing with the subset
//! of the real API this workspace uses: `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `Just`, `any`, integer-range and tuple strategies,
//! `prop_map`, and `collection::vec`. Inputs for each case derive from a
//! hash of the test's module path, name, and case index, so failures are
//! reproducible run-to-run. Unlike the real crate there is no shrinking:
//! a failing case reports its index and re-panics.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-proptest configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one test case. Public for use by the `proptest!`
/// expansion only.
#[doc(hidden)]
pub fn __rng_for(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64))
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Mapped<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Mapped { inner: self, f }
        }

        /// Erases the strategy type for heterogeneous composition
        /// (`prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy applying a function to another strategy's output.
    #[derive(Clone)]
    pub struct Mapped<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Mapped<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof!: all weights are zero"
            );
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut roll = rng.gen_range(0..total);
            for (weight, arm) in &self.arms {
                let weight = *weight as u64;
                if roll < weight {
                    return arm.generate(rng);
                }
                roll -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_strategy_for_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    /// Strategy behind [`crate::any`]: uniform over the whole type.
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: rand::Standard> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }
}

/// Uniform strategy over all values of `T` (primitives).
pub fn any<T: rand::Standard>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::default()
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Element-count bounds for collection strategies. Half-open: `hi` is
    /// exclusive, matching `Range<usize>` inputs.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range is empty");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of another strategy's values.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr); ) => {};
    ( ($cfg:expr);
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ( $( $strat, )+ );
            for __case in 0..__config.cases {
                let mut __rng = $crate::__rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ( $( $arg, )+ ) = {
                    let ( $( ref $arg, )+ ) = __strategies;
                    ( $( $crate::strategy::Strategy::generate($arg, &mut __rng), )+ )
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(__err) = __outcome {
                    eprintln!(
                        "[proptest] {} failed at case {} of {}",
                        stringify!($name), __case, __config.cases
                    );
                    ::std::panic::resume_unwind(__err);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{any, collection, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    #[test]
    fn same_path_same_values() {
        let strat = crate::collection::vec(0u64..100, 1..20);
        let a: Vec<u64> = strat.generate(&mut crate::__rng_for("t", 3));
        let b: Vec<u64> = strat.generate(&mut crate::__rng_for("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn union_respects_weights_roughly() {
        let strat = prop_oneof![
            9 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut rng = crate::__rng_for("weights", 0);
        let ones = (0..1000).filter(|_| strat.generate(&mut rng) == 1).count();
        assert!(ones > 700, "expected mostly 1s, got {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_vecs_respect_bounds(
            v in collection::vec(any::<u8>(), 2..5),
            k in 1u64..=4,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn mapped_tuples_work(p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 19);
        }
    }
}
