//! Vendored stand-in for `serde_json`: renders the workspace `serde`
//! value tree as JSON text. Serialization only — nothing in-tree parses
//! JSON at runtime.

pub use serde::value::{Map, Number, Value};

/// Serialization error. The value-tree model is infallible, so this is
/// never constructed; it exists so call sites can keep the real crate's
/// `Result` signatures.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Builds a [`Value`] from a JSON-ish literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // `{}` prints integral floats without a fraction; add one so
                // the output stays a JSON *number* that reads back as float.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                    out.push_str(".0");
                }
            } else {
                // Real serde_json refuses non-finite floats; null keeps the
                // artifact valid JSON without aborting a whole report.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let mut map = Map::new();
        map.insert("a".into(), json!(null));
        map.insert("b".into(), Value::Array(vec![json!(true), json!(2u64)]));
        let doc = Value::Object(map);
        assert_eq!(to_string(&doc).unwrap(), r#"{"a":null,"b":[true,2]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let mut map = Map::new();
        map.insert("k".into(), json!(1u64));
        let text = to_string_pretty(&Value::Object(map)).unwrap();
        assert_eq!(text, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn json_macro_objects() {
        let v = json!({ "x": null, "y": [true, false] });
        assert_eq!(to_string(&v).unwrap(), r#"{"x":null,"y":[true,false]}"#);
    }
}
