//! Vendored stand-in for `criterion`.
//!
//! Provides the types and macros the workspace's benches compile against
//! (`Criterion`, benchmark groups, `Bencher::iter`/`iter_with_setup`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`). Measurement is a
//! simple mean over a fixed warm-up + sample loop printed as ns/iter —
//! enough to compare orders of magnitude locally, with none of the real
//! crate's statistics, plotting, or CLI.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed iterations per `bench_function` (after warm-up).
const MEASURED_ITERS: u32 = 30;
const WARMUP_ITERS: u32 = 5;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{id}"), &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in uses fixed iteration
    /// counts instead of a time budget.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; see [`Self::measurement_time`].
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{}/{id}", self.name), &mut f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters > 0 {
        bencher.total.as_nanos() / bencher.iters as u128
    } else {
        0
    };
    println!("  {label}: {per_iter} ns/iter ({} iters)", bencher.iters);
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed warm-up + sample loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += MEASURED_ITERS as u64;
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..MEASURED_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Parameterized benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label composed of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Re-export so `criterion::black_box` call sites keep working.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test --benches` the harness passes test flags;
            // a bench run takes no arguments we care about either way.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_counts_iters() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls as u32, WARMUP_ITERS + MEASURED_ITERS);
    }

    #[test]
    fn group_chaining_compiles() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .measurement_time(Duration::from_secs(1))
            .sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter_with_setup(|| 21u64, |x| x * 2)
        });
        group.finish();
    }
}
