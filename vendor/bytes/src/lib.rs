//! Vendored stand-in for `bytes`, providing an `Arc`-backed immutable
//! buffer. Clones share the allocation, matching the real crate's
//! cheap-clone contract; slicing and the mutable builder types are not
//! needed by this workspace and are omitted.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Creates a buffer from a static slice (no copy in the real crate;
    /// here a copy into the shared allocation).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the contents into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cheap_clone() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, c);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn from_vec_and_deref() {
        let b: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        fn takes_slice(s: &[u8]) -> usize {
            s.len()
        }
        assert_eq!(takes_slice(&b), 3);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
