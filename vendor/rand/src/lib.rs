//! Vendored stand-in for `rand`, providing the subset this workspace
//! uses: `rngs::StdRng` seeded via `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen`, `gen_bool`, and `gen_range`.
//!
//! The generator is xoshiro256** seeded through splitmix64 — fast, well
//! distributed, and fully deterministic for a given seed, which is all the
//! simulation needs (no cryptographic claims). Streams differ from the
//! real crate's ChaCha-based `StdRng`, but every consumer in this
//! workspace only relies on *seed-stable* determinism, not on matching
//! upstream streams.

/// A source of random 64-bit words. Object-safe.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly from an RNG — the target of
/// [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range` (a `Range` or `RangeInclusive`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, per the xoshiro authors'
            // recommendation, so nearby seeds yield unrelated streams.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let k: usize = rng.gen_range(5..=10);
            assert!((5..=10).contains(&k));
            seen[k - 5] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in 5..=10 reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(11);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
