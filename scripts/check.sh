#!/usr/bin/env bash
# Pre-merge gate: every PR must pass this locally before review.
#
#   scripts/check.sh          # fmt check + clippy (deny warnings) + tests
#
# The vendored stand-ins under vendor/ are excluded from the workspace, so
# fmt/clippy/test all target the reproduction code only.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The storage crate carries the ExtentBackend trait surface every later PR
# plugs into; lint it separately so a workspace-level allow can never mask
# drift on the API seam.
echo "==> cargo clippy -p bg3-storage (trait surface lint gate)"
cargo clippy -p bg3-storage --all-targets -- -D warnings

# The vectorized read path spans the graph-store batching seam
# (NeighborSink / neighbors_batch) and the morsel-driven executor; lint
# both crates separately for the same reason.
echo "==> cargo clippy -p bg3-graph -p bg3-query (read path lint gate)"
cargo clippy -p bg3-graph -p bg3-query --all-targets -- -D warnings

# The obs crate carries the span/ledger plane every engine layer charges
# into; lint it separately so the attribution seam can never drift behind
# a workspace-level allow.
echo "==> cargo clippy -p bg3-obs (span/ledger lint gate)"
cargo clippy -p bg3-obs --all-targets -- -D warnings

echo "==> cargo test --workspace (tier-1)"
cargo test --workspace --quiet

echo "==> concurrent stress test (RUSTFLAGS=-D warnings)"
RUSTFLAGS="-D warnings" cargo test --quiet --test chaos_recovery \
    striped_forest_survives_concurrent_put_get_split_out

echo "==> replication divergence proptest (RUSTFLAGS=-D warnings)"
RUSTFLAGS="-D warnings" cargo test --quiet --test replication_consistency \
    follower_never_diverges_under_read_faults_and_dropped_publishes

echo "==> frame codec proptests (round-trip + single-bit-flip detection)"
RUSTFLAGS="-D warnings" cargo test --quiet -p bg3-storage --test frame_properties

echo "==> backend conformance suite (SimBackend + FileBackend + FaultBackend(file), tempdir)"
RUSTFLAGS="-D warnings" cargo test --quiet -p bg3-storage --test backend_conformance

echo "==> cache_scaling smoke (~5s)"
cargo run --release --quiet -p bg3-bench --bin reproduce -- cache_scaling --scale quick --threads 2

echo "==> failover smoke (5 kill/promote/zombie cycles) + metrics drift gate"
cargo run --release --quiet -p bg3-bench --bin reproduce -- failover --cycles 5 \
    --metrics-json target/metrics-smoke.json
cargo run --release --quiet -p bg3-bench --bin metrics_check -- target/metrics-smoke.json

echo "==> scrub smoke (bit rot + torn writes + crash cycles) + metrics drift gate"
cargo run --release --quiet -p bg3-bench --bin reproduce -- scrub --cycles 2 \
    --metrics-json target/metrics-scrub-smoke.json
cargo run --release --quiet -p bg3-bench --bin metrics_check -- target/metrics-scrub-smoke.json

echo "==> disk smoke (file backend: kill+recover, on-disk bit-flip scrub; tempdir)"
cargo run --release --quiet -p bg3-bench --bin reproduce -- disk_smoke --scale quick

echo "==> disk chaos smoke (errno storms, fsyncgate, ENOSPC degradation) + metrics drift gate"
cargo run --release --quiet -p bg3-bench --bin reproduce -- disk_chaos --scale quick \
    --metrics-json target/metrics-disk-chaos-smoke.json
cargo run --release --quiet -p bg3-bench --bin metrics_check -- target/metrics-disk-chaos-smoke.json

echo "==> batched-vs-scalar executor equivalence proptest"
RUSTFLAGS="-D warnings" cargo test --quiet -p bg3-query --test query_equivalence

echo "==> khop smoke (batched vs per-vertex frontier sweep)"
cargo run --release --quiet -p bg3-bench --bin reproduce -- khop --scale quick

echo "==> admission conservation + bounded-queue proptests"
RUSTFLAGS="-D warnings" cargo test --quiet --test admission_properties

echo "==> overload smoke (0.5x-2x saturation sweep) + metrics drift gate"
cargo run --release --quiet -p bg3-bench --bin reproduce -- overload --scale quick \
    --metrics-json target/metrics-overload-smoke.json
cargo run --release --quiet -p bg3-bench --bin metrics_check -- target/metrics-overload-smoke.json

echo "==> profile smoke (attribution conservation on the Table-1 mixes) + metrics drift gate"
cargo run --release --quiet -p bg3-bench --bin reproduce -- profile --scale quick \
    --metrics-json target/metrics-profile-smoke.json
cargo run --release --quiet -p bg3-bench --bin metrics_check -- target/metrics-profile-smoke.json

echo "==> span overhead bench (profiled-over-plain ratio bound asserted)"
cargo bench --quiet -p bg3-bench --bench span_overhead

echo "==> all checks passed"
